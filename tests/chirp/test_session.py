"""ChirpSession context-manager and client-lifecycle edges."""

import pytest

from repro.chirp import ChirpError, ChirpSession
from repro.chirp.auth import GlobusAuthenticator, HostnameAuthenticator
from repro.kernel.errno import Errno, KernelError
from tests.chirp.conftest import CLIENT_HOST, DEFAULT_RETRY, FRED_DN, SERVER_HOST


def test_session_context_manager(cluster, server, fred_wallet):
    with ChirpSession(
        cluster.network,
        CLIENT_HOST,
        SERVER_HOST,
        authenticators=[GlobusAuthenticator(fred_wallet)],
        retry=DEFAULT_RETRY,
    ) as client:
        assert client.principal == f"globus:{FRED_DN}"
        client.mkdir("/ctx")
        assert client.readdir("/ctx") == []
    # the connection is closed on exit
    with pytest.raises(KernelError) as info:
        client.connection.call(b"late frame")
    # EPIPE after a clean close; RESET if a fault already broke the wire
    assert info.value.errno in (Errno.EPIPE, Errno.ECONNRESET)


def test_session_closes_even_on_body_error(cluster, server, fred_wallet):
    with pytest.raises(RuntimeError):
        with ChirpSession(
            cluster.network,
            CLIENT_HOST,
            SERVER_HOST,
            authenticators=[GlobusAuthenticator(fred_wallet)],
        ) as client:
            raise RuntimeError("boom")
    assert client.connection.closed


def test_session_with_hostname_auth(cluster, server):
    with ChirpSession(
        cluster.network,
        CLIENT_HOST,
        SERVER_HOST,
        authenticators=[HostnameAuthenticator()],
        retry=DEFAULT_RETRY,
    ) as client:
        assert client.whoami() == f"hostname:{CLIENT_HOST}"


def test_client_close_idempotent(fred):
    fred.close()
    fred.close()


def test_server_rejects_ops_on_closed_client(fred):
    fred.close()
    with pytest.raises(ChirpError) as info:
        fred.stat("/")
    assert info.value.errno is Errno.EPIPE


def test_access_distinguishes_denial_from_absence(fred):
    fred.mkdir("/w")
    fred.put(b"x", "/w/f")
    assert fred.access("/w/f", "r") is True
    with pytest.raises(ChirpError) as info:
        fred.access("/w/ghost", "r")
    assert info.value.errno is Errno.ENOENT
