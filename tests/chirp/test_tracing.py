"""Distributed tracing across the Chirp wire.

The observability layer's cross-boundary claim: a client RPC span's
trace id rides the wire frame, the server's pipeline span reparents
under it, and the boxed syscalls a remote ``exec`` performs nest under
*that* — one trace from the laptop's call site to the server's kernel.
Under faults, a retried frame must reuse the original call's trace id
(the tracing analogue of the idempotency key).

These tests build their own clusters (and their own fault plans), so
they are independent of the suite-wide ``REPRO_FAULT_RATE`` knob.
"""

from repro.chirp import (
    CHIRP_PORT,
    ChirpClient,
    ChirpServer,
    GlobusAuthenticator,
    RetryPolicy,
    ServerAuth,
)
from repro.core import Acl, Rights, Telemetry
from repro.gsi import CertificateAuthority, CredentialStore, provision_user
from repro.kernel.fdtable import OpenFlags
from repro.kernel.timing import NS_PER_MS, NS_PER_S
from repro.net import Cluster, FaultPlan

SERVER = "server1.nowhere.edu"
LAPTOP = "laptop.cs.nowhere.edu"
FRED_DN = "/O=UnivNowhere/CN=Fred"

RETRY = RetryPolicy(
    max_attempts=10,
    call_timeout_ns=5 * NS_PER_S,
    backoff_base_ns=5 * NS_PER_MS,
    seed=99,
)


def make_traced_world(plan=None):
    """One GSI-authenticated server with telemetry on both ends."""
    cluster = Cluster()
    cluster.add_machine(SERVER)
    cluster.add_machine(LAPTOP)
    ca = CertificateAuthority("UnivNowhere CA")
    trust = CredentialStore()
    trust.trust(ca)
    wallet = provision_user(ca, trust, FRED_DN)

    machine = cluster.machine(SERVER)
    server_tel = Telemetry(cluster.clock)
    machine.telemetry = server_tel
    owner = machine.add_user("dthain")
    server = ChirpServer(
        machine,
        owner,
        network=cluster.network,
        auth=ServerAuth(credential_store=trust),
    )
    acl = Acl()
    acl.set_entry("globus:/O=UnivNowhere/*", Rights.parse("rlv(rwlax)"))
    server.set_root_acl(acl)
    server.serve()

    def sim(proc, args):
        fd = yield proc.sys.open("out.dat", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
        yield proc.sys.write(fd, proc.alloc_bytes(b"done\n"), 5)
        yield proc.sys.close(fd)
        return 0

    machine.register_program("sim", sim)
    if plan is not None:
        cluster.install_faults(plan)

    client_tel = Telemetry(cluster.clock)
    client = ChirpClient.connect(
        cluster.network, LAPTOP, SERVER,
        retry=RETRY if plan is not None else None,
        telemetry=client_tel,
    )
    client.authenticate([GlobusAuthenticator(wallet)])
    return cluster, server, server_tel, client, client_tel


def only_span(telemetry, name):
    spans = telemetry.spans_named(name)
    assert len(spans) == 1, f"expected exactly one {name!r} span, got {spans}"
    return spans[0]


# -- the nesting claim: laptop call site -> server kernel --------------------- #


def test_remote_exec_trace_nests_client_rpc_server_op_and_boxed_syscalls():
    _, _, server_tel, client, client_tel = make_traced_world()
    client.mkdir("/work")
    client.put(b"#!repro:sim\n", "/work/sim.exe", mode=0o755)
    assert client.exec("/work/sim.exe", cwd="/work") == 0

    rpc = only_span(client_tel, "rpc:exec")
    remote = only_span(server_tel, "chirp:exec")
    # the server's pipeline span reparented under the client's RPC span
    assert remote.trace_id == rpc.trace_id
    assert remote.parent_id == rpc.span_id
    assert remote.identity == f"globus:{FRED_DN}"
    # and the boxed program's syscalls nest under the server span, so the
    # whole remote execution is one trace rooted at the laptop's call
    syscalls = [
        s for s in server_tel.spans_in_trace(rpc.trace_id)
        if s.surface == "syscall"
    ]
    assert {s.name for s in syscalls} == {
        "syscall:open", "syscall:write", "syscall:close",
    }
    for span in syscalls:
        assert span.parent_id == remote.span_id
    # spans measure simulated time: the RPC envelops the server-side work
    assert rpc.duration_ns >= remote.duration_ns > 0


def test_unrelated_rpcs_get_distinct_traces():
    _, _, _, client, client_tel = make_traced_world()
    client.mkdir("/a")
    client.mkdir("/b")
    first, second = client_tel.spans_named("rpc:mkdir")
    assert first.trace_id != second.trace_id


# -- the retry claim: one logical call, one trace id -------------------------- #


def test_retried_frame_reuses_the_original_trace_id():
    # the request is dropped before the server ever sees it; only the
    # retried frame arrives — carrying the *original* trace id
    plan = FaultPlan(ports=(CHIRP_PORT,))
    _, server, server_tel, client, client_tel = make_traced_world(plan)
    plan.force("drop")
    client.mkdir("/w")

    assert client.stats.retries >= 1
    assert client_tel.counter("client.retries", op="mkdir") >= 1
    rpc = only_span(client_tel, "rpc:mkdir")  # one logical call, one span
    remote = only_span(server_tel, "chirp:mkdir")
    assert remote.trace_id == rpc.trace_id
    assert remote.parent_id == rpc.span_id


def test_replayed_retry_shares_the_trace_and_executes_once():
    # the server applies the mkdir but the response dies: the retry hits
    # the idempotency cache, so exactly one pipeline span exists and it
    # belongs to the client call's trace
    plan = FaultPlan(ports=(CHIRP_PORT,))
    _, server, server_tel, client, client_tel = make_traced_world(plan)
    plan.force("drop_after")
    client.mkdir("/solo")

    assert server.stats.replays == 1
    assert server_tel.counter("chirp.replays", op="mkdir") == 1
    rpc = only_span(client_tel, "rpc:mkdir")
    remote = only_span(server_tel, "chirp:mkdir")
    assert remote.trace_id == rpc.trace_id
    assert client.stat("/solo").is_dir


# -- pipeline stats surface the telemetry snapshot ---------------------------- #


def test_pipeline_stats_includes_a_detached_telemetry_section():
    _, server, server_tel, client, _ = make_traced_world()
    client.mkdir("/w")
    stats = server.pipeline.stats()
    ops_before = server_tel.counter_total("pipeline.ops")
    assert stats["telemetry"]["counters"]  # the mkdir was counted
    # mutating the returned structure must not corrupt live telemetry
    stats["telemetry"]["counters"].clear()
    stats["telemetry"]["spans"].clear()
    assert server_tel.counter_total("pipeline.ops") == ops_before
    assert server.pipeline.stats()["telemetry"]["counters"]
