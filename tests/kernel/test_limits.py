"""Resource limits and boundary conditions across the kernel."""

import pytest

from repro.kernel import Errno, KernelError, Machine, OpenFlags
from repro.kernel.fdtable import FD_LIMIT, FDTable, OpenFile
from repro.kernel.inode import FileType, Inode
from repro.kernel.localfs import LocalFS, NAME_MAX
from repro.kernel.vfs import PATH_MAX, VFS


def make_of():
    inode = Inode(ino=1, ftype=FileType.FILE, mode=0o644, uid=0, gid=0)
    return OpenFile(inode=inode, flags=OpenFlags.O_RDONLY, path="/f")


def test_fd_limit_enforced():
    table = FDTable()
    table._next_fd = FD_LIMIT - 2
    table.install(make_of())
    table.install(make_of())
    with pytest.raises(KernelError) as info:
        table.install(make_of())
    assert info.value.errno is Errno.EMFILE


def test_name_max_enforced(machine, alice_task):
    ok = "x" * NAME_MAX
    too_long = "x" * (NAME_MAX + 1)
    assert machine.kcall(alice_task, "mkdir", ok, 0o755) == 0
    assert machine.kcall(alice_task, "mkdir", too_long, 0o755) == -Errno.ENAMETOOLONG


def test_path_max_enforced(machine, alice_task):
    monster = "/" + "/".join(["d"] * (PATH_MAX // 2 + 10))
    assert machine.kcall(alice_task, "stat", monster) == -Errno.ENAMETOOLONG


def test_rename_onto_own_hard_link_is_noop(machine, alice_task):
    machine.write_file(alice_task, "a", b"data")
    machine.kcall_x(alice_task, "link", "a", "b")
    assert machine.kcall(alice_task, "rename", "a", "b") == 0
    # POSIX: the source entry goes away, the target stays, content intact
    assert machine.read_file(alice_task, "b") == b"data"


def test_zero_length_io(machine, alice_task):
    machine.write_file(alice_task, "f", b"abc")
    fd = machine.kcall_x(alice_task, "open", "f", OpenFlags.O_RDWR)
    assert machine.kcall_x(alice_task, "read_bytes", fd, 0) == b""
    assert machine.kcall_x(alice_task, "write_bytes", fd, b"") == 0
    assert machine.read_file(alice_task, "f") == b"abc"


def test_deeply_nested_directories(machine, alice_task):
    # build 64 levels and stat the leaf
    current = "/home/alice"
    for i in range(64):
        current += f"/n{i}"
        machine.kcall_x(alice_task, "mkdir", current, 0o755)
    st = machine.kcall_x(alice_task, "stat", current)
    assert st.is_dir


def test_readdir_of_giant_directory(machine, alice_task):
    machine.kcall_x(alice_task, "mkdir", "big", 0o755)
    for i in range(300):
        machine.write_file(alice_task, f"big/f{i:03d}", b"")
    names = machine.kcall_x(alice_task, "readdir", "big")
    assert len(names) == 300
    assert names == sorted(names)


def test_unlink_open_file_keeps_description_usable(machine, alice_task):
    """Classic Unix: an unlinked-but-open file stays readable via its fd."""
    machine.write_file(alice_task, "ghost", b"still here")
    fd = machine.kcall_x(alice_task, "open", "ghost", OpenFlags.O_RDONLY)
    machine.kcall_x(alice_task, "unlink", "ghost")
    assert machine.kcall(alice_task, "stat", "ghost") == -Errno.ENOENT
    assert machine.kcall_x(alice_task, "read_bytes", fd, 16) == b"still here"
    machine.kcall_x(alice_task, "close", fd)


def test_scheduler_round_robin_interleaves():
    machine = Machine()
    cred = machine.add_user("u")
    order = []

    def worker(tag):
        def body(proc, args):
            for _ in range(3):
                yield proc.compute(us=1)
                order.append(tag)
            return 0

        return body

    machine.spawn(worker("a"), cred=cred)
    machine.spawn(worker("b"), cred=cred)
    machine.run_to_completion()
    # strict alternation: the ready queue is FIFO
    assert order == ["a", "b", "a", "b", "a", "b"]


def test_many_processes_all_complete():
    machine = Machine()
    cred = machine.add_user("u")
    done = []

    def body(proc, args):
        yield proc.compute(us=1)
        done.append(1)
        return 0

    for _ in range(200):
        machine.spawn(body, cred=cred)
    machine.run_to_completion()
    assert len(done) == 200
