"""The in-memory filesystem: directory and data operations."""

import pytest

from repro.kernel.errno import Errno, KernelError
from repro.kernel.inode import FileType
from repro.kernel.localfs import LocalFS, check_name


@pytest.fixture
def fs():
    return LocalFS()


def test_root_exists(fs):
    assert fs.root.is_dir
    assert fs.root.ino == 1


def test_create_and_lookup_file(fs):
    node = fs.create_file(fs.root, "a.txt", uid=1, gid=1)
    assert fs.lookup(fs.root, "a.txt") is node
    assert node.is_file and node.nlink == 1


def test_create_duplicate_fails(fs):
    fs.create_file(fs.root, "a", 1, 1)
    with pytest.raises(KernelError) as info:
        fs.create_file(fs.root, "a", 1, 1)
    assert info.value.errno is Errno.EEXIST


def test_lookup_missing_is_enoent(fs):
    with pytest.raises(KernelError) as info:
        fs.lookup(fs.root, "ghost")
    assert info.value.errno is Errno.ENOENT


def test_lookup_dot_and_dotdot(fs):
    sub = fs.mkdir(fs.root, "sub", 1, 1)
    assert fs.lookup(sub, ".") is sub
    assert fs.lookup(sub, "..") is fs.root
    assert fs.lookup(fs.root, "..") is fs.root  # root's parent is root


def test_mkdir_maintains_nlink(fs):
    before = fs.root.nlink
    sub = fs.mkdir(fs.root, "sub", 1, 1)
    assert sub.nlink == 2
    assert fs.root.nlink == before + 1


def test_lookup_on_file_is_enotdir(fs):
    f = fs.create_file(fs.root, "f", 1, 1)
    with pytest.raises(KernelError) as info:
        fs.lookup(f, "x")
    assert info.value.errno is Errno.ENOTDIR


def test_symlink_stores_target(fs):
    link = fs.symlink(fs.root, "l", "/target/path", 1, 1)
    assert link.is_symlink
    assert link.symlink_target == "/target/path"


def test_hard_link_shares_inode(fs):
    f = fs.create_file(fs.root, "orig", 1, 1)
    fs.link(fs.root, "alias", f)
    assert f.nlink == 2
    assert fs.lookup(fs.root, "alias") is f


def test_hard_link_to_directory_forbidden(fs):
    d = fs.mkdir(fs.root, "d", 1, 1)
    with pytest.raises(KernelError) as info:
        fs.link(fs.root, "dlink", d)
    assert info.value.errno is Errno.EPERM


def test_unlink_frees_at_zero_nlink(fs):
    f = fs.create_file(fs.root, "f", 1, 1)
    ino = f.ino
    fs.unlink(fs.root, "f")
    with pytest.raises(KernelError):
        fs.inode(ino)


def test_unlink_keeps_inode_while_linked(fs):
    f = fs.create_file(fs.root, "f", 1, 1)
    fs.link(fs.root, "alias", f)
    fs.unlink(fs.root, "f")
    assert fs.inode(f.ino) is f
    assert f.nlink == 1


def test_unlink_directory_is_eisdir(fs):
    fs.mkdir(fs.root, "d", 1, 1)
    with pytest.raises(KernelError) as info:
        fs.unlink(fs.root, "d")
    assert info.value.errno is Errno.EISDIR


def test_rmdir_removes_empty_dir(fs):
    fs.mkdir(fs.root, "d", 1, 1)
    fs.rmdir(fs.root, "d")
    with pytest.raises(KernelError):
        fs.lookup(fs.root, "d")


def test_rmdir_nonempty_fails(fs):
    d = fs.mkdir(fs.root, "d", 1, 1)
    fs.create_file(d, "f", 1, 1)
    with pytest.raises(KernelError) as info:
        fs.rmdir(fs.root, "d")
    assert info.value.errno is Errno.ENOTEMPTY


def test_rmdir_restores_parent_nlink(fs):
    before = fs.root.nlink
    fs.mkdir(fs.root, "d", 1, 1)
    fs.rmdir(fs.root, "d")
    assert fs.root.nlink == before


def test_rmdir_file_is_enotdir(fs):
    fs.create_file(fs.root, "f", 1, 1)
    with pytest.raises(KernelError) as info:
        fs.rmdir(fs.root, "f")
    assert info.value.errno is Errno.ENOTDIR


def test_rename_moves_entry(fs):
    d1 = fs.mkdir(fs.root, "d1", 1, 1)
    d2 = fs.mkdir(fs.root, "d2", 1, 1)
    f = fs.create_file(d1, "f", 1, 1)
    fs.rename(d1, "f", d2, "g")
    assert fs.lookup(d2, "g") is f
    with pytest.raises(KernelError):
        fs.lookup(d1, "f")


def test_rename_replaces_existing_file(fs):
    f1 = fs.create_file(fs.root, "a", 1, 1)
    f2 = fs.create_file(fs.root, "b", 1, 1)
    fs.rename(fs.root, "a", fs.root, "b")
    assert fs.lookup(fs.root, "b") is f1
    assert f2.nlink == 0 or f2.ino not in fs._inodes


def test_rename_directory_updates_parent_pointer(fs):
    d1 = fs.mkdir(fs.root, "d1", 1, 1)
    d2 = fs.mkdir(fs.root, "d2", 1, 1)
    sub = fs.mkdir(d1, "sub", 1, 1)
    fs.rename(d1, "sub", d2, "sub")
    assert fs.parent_of(sub) is d2


def test_rename_dir_over_nonempty_dir_fails(fs):
    d1 = fs.mkdir(fs.root, "d1", 1, 1)
    d2 = fs.mkdir(fs.root, "d2", 1, 1)
    fs.create_file(d2, "occupied", 1, 1)
    with pytest.raises(KernelError) as info:
        fs.rename(fs.root, "d1", fs.root, "d2")
    assert info.value.errno is Errno.ENOTEMPTY


def test_rename_file_over_dir_fails(fs):
    fs.create_file(fs.root, "f", 1, 1)
    fs.mkdir(fs.root, "d", 1, 1)
    with pytest.raises(KernelError) as info:
        fs.rename(fs.root, "f", fs.root, "d")
    assert info.value.errno is Errno.EISDIR


def test_readdir_sorted_without_dots(fs):
    fs.create_file(fs.root, "b", 1, 1)
    fs.create_file(fs.root, "a", 1, 1)
    fs.mkdir(fs.root, "c", 1, 1)
    # root also holds the bootstrap entries of a fresh LocalFS (none here)
    assert fs.readdir(fs.root) == ["a", "b", "c"]


# -- file data ------------------------------------------------------------ #


def test_write_read_at(fs):
    f = fs.create_file(fs.root, "f", 1, 1)
    assert fs.write_at(f, 0, b"hello world") == 11
    assert fs.read_at(f, 6, 5) == b"world"


def test_write_beyond_end_zero_fills(fs):
    f = fs.create_file(fs.root, "f", 1, 1)
    fs.write_at(f, 4, b"x")
    assert bytes(f.data) == b"\x00\x00\x00\x00x"


def test_read_past_eof_is_short(fs):
    f = fs.create_file(fs.root, "f", 1, 1)
    fs.write_at(f, 0, b"abc")
    assert fs.read_at(f, 2, 100) == b"c"
    assert fs.read_at(f, 10, 5) == b""


def test_read_from_dir_is_eisdir(fs):
    d = fs.mkdir(fs.root, "d", 1, 1)
    with pytest.raises(KernelError) as info:
        fs.read_at(d, 0, 1)
    assert info.value.errno is Errno.EISDIR


def test_truncate_shrinks_and_grows(fs):
    f = fs.create_file(fs.root, "f", 1, 1)
    fs.write_at(f, 0, b"123456")
    fs.truncate(f, 3)
    assert bytes(f.data) == b"123"
    fs.truncate(f, 5)
    assert bytes(f.data) == b"123\x00\x00"


def test_negative_offsets_rejected(fs):
    f = fs.create_file(fs.root, "f", 1, 1)
    with pytest.raises(KernelError):
        fs.read_at(f, -1, 1)
    with pytest.raises(KernelError):
        fs.write_at(f, -1, b"x")
    with pytest.raises(KernelError):
        fs.truncate(f, -1)


# -- name validation and invariants ---------------------------------------- #


@pytest.mark.parametrize("bad", ["", ".", "..", "a/b", "nul\x00byte", "x" * 300])
def test_check_name_rejects(bad):
    with pytest.raises(KernelError):
        check_name(bad)


def test_check_name_accepts_normal_names():
    check_name("file.txt")
    check_name(".hidden")
    check_name("with spaces")


def test_invariants_hold_after_mixed_operations(fs):
    d = fs.mkdir(fs.root, "d", 1, 1)
    f = fs.create_file(d, "f", 1, 1)
    fs.link(d, "f2", f)
    fs.symlink(d, "s", "f", 1, 1)
    fs.rename(d, "f", fs.root, "moved")
    fs.unlink(d, "f2")
    fs.check_invariants()
