"""Descriptor inheritance across spawn (fork+exec semantics)."""

from repro.kernel import OpenFlags, WaitResult


def test_child_inherits_open_files(machine, alice, alice_task):
    machine.write_file(alice_task, "/home/alice/data", b"0123456789")
    observed = []

    def child(proc, args):
        fd = int(args[0])
        buf = proc.alloc(4)
        n = yield proc.sys.read(fd, buf, 4)
        observed.append(proc.read_buffer(buf, n))
        return 0

    machine.register_program("child", child)
    machine.install_program(alice_task, "/home/alice/c.exe", "child")

    def parent(proc, args):
        fd = yield proc.sys.open("/home/alice/data", OpenFlags.O_RDONLY)
        buf = proc.alloc(4)
        yield proc.sys.read(fd, buf, 4)  # parent consumes "0123"
        yield proc.sys.spawn("/home/alice/c.exe", (str(fd),))
        result = yield proc.sys.waitpid()
        assert isinstance(result, WaitResult)
        # shared description: the child moved the shared offset
        n = yield proc.sys.read(fd, buf, 2)
        observed.append(proc.read_buffer(buf, n))
        yield proc.sys.close(fd)
        return 0

    machine.spawn(parent, cred=alice, cwd="/home/alice")
    machine.run_to_completion()
    assert observed == [b"4567", b"89"]


def test_child_close_does_not_close_parent_fd(machine, alice, alice_task):
    machine.write_file(alice_task, "/home/alice/data", b"abcdef")
    results = []

    def child(proc, args):
        yield proc.sys.close(int(args[0]))
        return 0

    machine.register_program("closer", child)
    machine.install_program(alice_task, "/home/alice/c.exe", "closer")

    def parent(proc, args):
        fd = yield proc.sys.open("/home/alice/data", OpenFlags.O_RDONLY)
        yield proc.sys.spawn("/home/alice/c.exe", (str(fd),))
        yield proc.sys.waitpid()
        buf = proc.alloc(6)
        results.append((yield proc.sys.read(fd, buf, 6)))
        yield proc.sys.close(fd)
        return 0

    machine.spawn(parent, cred=alice, cwd="/home/alice")
    machine.run_to_completion()
    assert results == [6]  # the parent's number still works


def test_child_exit_releases_only_its_references(machine, alice, alice_task):
    machine.write_file(alice_task, "/home/alice/data", b"x")
    results = []

    def child(proc, args):
        yield proc.compute(us=1)
        return 0  # exits without closing anything

    machine.register_program("noop", child)
    machine.install_program(alice_task, "/home/alice/c.exe", "noop")

    def parent(proc, args):
        fd = yield proc.sys.open("/home/alice/data", OpenFlags.O_RDONLY)
        yield proc.sys.spawn("/home/alice/c.exe", ())
        yield proc.sys.waitpid()
        buf = proc.alloc(1)
        results.append((yield proc.sys.read(fd, buf, 1)))
        yield proc.sys.close(fd)
        return 0

    machine.spawn(parent, cred=alice, cwd="/home/alice")
    machine.run_to_completion()
    assert results == [1]
