"""The local account database: the thing identity boxing routes around."""

import pytest

from repro.kernel.errno import Errno, KernelError
from repro.kernel.users import Credentials, NOBODY_UID, ROOT_UID, UserDB


@pytest.fixture
def db():
    return UserDB()


@pytest.fixture
def root_cred(db):
    return db.credentials_for("root")


def test_bootstrap_accounts(db):
    assert db.by_name("root").uid == ROOT_UID
    assert db.by_name("nobody").uid == NOBODY_UID


def test_create_account(db, root_cred):
    account = db.create_account(root_cred, "fred")
    assert account.uid >= 1000
    assert db.by_name("fred") is account
    assert db.by_uid(account.uid) is account


def test_create_requires_root(db):
    user = Credentials(uid=1000, gid=1000, username="u")
    with pytest.raises(KernelError) as info:
        db.create_account(user, "evil")
    assert info.value.errno is Errno.EPERM


def test_duplicate_name_rejected(db, root_cred):
    db.create_account(root_cred, "fred")
    with pytest.raises(KernelError) as info:
        db.create_account(root_cred, "fred")
    assert info.value.errno is Errno.EEXIST


def test_explicit_uid(db, root_cred):
    account = db.create_account(root_cred, "fixed", uid=5555)
    assert account.uid == 5555
    with pytest.raises(KernelError):
        db.create_account(root_cred, "other", uid=5555)


def test_uids_unique_after_explicit_allocation(db, root_cred):
    db.create_account(root_cred, "a", uid=2000)
    b = db.create_account(root_cred, "b")
    assert b.uid != 2000


def test_admin_actions_counted(db, root_cred):
    assert db.admin_actions == 0
    db.create_account(root_cred, "u1")
    db.create_account(root_cred, "u2")
    db.remove_account(root_cred, "u1")
    assert db.admin_actions == 3


def test_remove_account(db, root_cred):
    db.create_account(root_cred, "temp")
    db.remove_account(root_cred, "temp")
    assert not db.exists("temp")


def test_remove_protected_accounts_refused(db, root_cred):
    for name in ("root", "nobody"):
        with pytest.raises(KernelError):
            db.remove_account(root_cred, name)


def test_remove_requires_root(db, root_cred):
    db.create_account(root_cred, "victim")
    user = db.credentials_for("victim")
    with pytest.raises(KernelError):
        db.remove_account(user, "victim")


def test_render_passwd_format(db, root_cred):
    db.create_account(root_cred, "fred")
    text = db.render_passwd()
    lines = text.strip().splitlines()
    assert lines[0].startswith("root:x:0:0:")
    assert any(line.startswith("fred:x:") for line in lines)
    assert all(len(line.split(":")) == 7 for line in lines)


def test_credentials_for(db, root_cred):
    db.create_account(root_cred, "fred")
    cred = db.credentials_for("fred")
    assert cred.username == "fred"
    assert not cred.is_root
    assert db.credentials_for("root").is_root


def test_unknown_lookups(db):
    with pytest.raises(KernelError):
        db.by_name("ghost")
    with pytest.raises(KernelError):
        db.by_uid(424242)
