"""Regression tests for self-termination through kill(2).

Found by the containment fuzzer: a process signalling its own pid used to
corrupt scheduler state (untraced) or crash the supervisor at the exit
stop (traced).  Both paths must cleanly terminate just the caller.
"""

from repro.core.box import IdentityBox
from repro.kernel import ProcessState, Signal


def test_untraced_self_kill(machine, alice):
    def suicidal(proc, args):
        pid = yield proc.sys.getpid()
        yield proc.sys.kill(pid, Signal.SIGKILL)
        raise AssertionError("unreachable")  # pragma: no cover

    proc = machine.spawn(suicidal, cred=alice)
    machine.run_to_completion()
    assert proc.exit_status == 128 + int(Signal.SIGKILL)
    assert proc.state in (ProcessState.ZOMBIE, ProcessState.DEAD)


def test_boxed_self_kill(machine, alice):
    box = IdentityBox(machine, alice, "Visitor")

    def suicidal(proc, args):
        pid = yield proc.sys.getpid()
        yield proc.sys.kill(pid, Signal.SIGKILL)
        raise AssertionError("unreachable")  # pragma: no cover

    proc = box.spawn(suicidal)
    machine.run_to_completion()
    assert proc.exit_status == 128 + int(Signal.SIGKILL)
    # the supervisor forgot the child and stays functional
    assert len(box.supervisor.table) == 0
    from tests.helpers import boxed_write_file

    assert boxed_write_file(box, "after.txt", b"ok") == 2


def test_boxed_kill_of_sibling_same_identity_midrun(machine, alice):
    box = IdentityBox(machine, alice, "Visitor")

    def victim(proc, args):
        for _ in range(1000):
            yield proc.compute(us=5)
        return 0

    vproc = box.spawn(victim)

    def killer(proc, args):
        result = yield proc.sys.kill(vproc.pid, Signal.SIGKILL)
        proc.scratch["result"] = result
        return 0

    kproc = box.spawn(killer)
    machine.run(max_steps=200_000)
    assert kproc.context.scratch["result"] == 0
    assert not vproc.alive
    assert kproc.exit_status == 0


def test_untraced_self_sigchld_is_survivable(machine, alice):
    def body(proc, args):
        pid = yield proc.sys.getpid()
        result = yield proc.sys.kill(pid, Signal.SIGCHLD)  # ignored by default
        proc.scratch["result"] = result
        return 0

    proc = machine.spawn(body, cred=alice)
    machine.run_to_completion()
    assert proc.exit_status == 0
    assert proc.context.scratch["result"] == 0
