"""Path resolution: walking, symlinks, traversal permission, helpers."""

import pytest

from repro.kernel.errno import Errno, KernelError
from repro.kernel.localfs import LocalFS
from repro.kernel.users import Credentials
from repro.kernel.vfs import (
    VFS,
    basename,
    dirname,
    join,
    normalize,
    split_path,
)


@pytest.fixture
def fs():
    return LocalFS()


@pytest.fixture
def vfs(fs):
    v = VFS(fs)
    a = fs.mkdir(fs.root, "a", 1, 1)
    b = fs.mkdir(a, "b", 1, 1)
    fs.create_file(b, "f.txt", 1, 1)
    return v


# -- pure path helpers ------------------------------------------------------ #


def test_split_path_collapses_slashes():
    assert split_path("//a///b/") == ["a", "b"]
    assert split_path("/") == []


def test_normalize_dots():
    assert normalize("/a/./b/../c") == "/a/c"
    assert normalize("/../..") == "/"
    assert normalize("/a/b/c/../../..") == "/"


def test_join_absolute_resets():
    assert join("/a", "b") == "/a/b"
    assert join("/a", "/b") == "/b"
    assert join("/", "x") == "/x"


def test_dirname_basename():
    assert dirname("/a/b/c") == "/a/b"
    assert basename("/a/b/c") == "c"
    assert dirname("/x") == "/"
    assert basename("/") == ""


# -- resolution ------------------------------------------------------------ #


def test_resolve_existing_file(vfs):
    res = vfs.resolve("/a/b/f.txt")
    assert res.exists
    assert res.name == "f.txt"
    assert res.dir_path == "/a/b"
    assert res.require().is_file


def test_resolve_missing_final_component(vfs):
    res = vfs.resolve("/a/b/new.txt")
    assert not res.exists
    assert res.parent.is_dir
    assert res.name == "new.txt"
    with pytest.raises(KernelError) as info:
        res.require()
    assert info.value.errno is Errno.ENOENT


def test_resolve_missing_intermediate_raises(vfs):
    with pytest.raises(KernelError) as info:
        vfs.resolve("/a/ghost/f.txt")
    assert info.value.errno is Errno.ENOENT


def test_resolve_relative_to_cwd(vfs):
    res = vfs.resolve("b/f.txt", cwd="/a")
    assert res.exists
    assert res.dir_path == "/a/b"


def test_resolve_dotdot(vfs):
    res = vfs.resolve("/a/b/../b/f.txt")
    assert res.exists


def test_resolve_file_as_intermediate_is_enotdir(vfs):
    with pytest.raises(KernelError) as info:
        vfs.resolve("/a/b/f.txt/deeper")
    assert info.value.errno is Errno.ENOTDIR


def test_resolve_root(vfs):
    res = vfs.resolve("/")
    assert res.exists
    assert res.require().ino == 1


def test_walk_stats_count_components(vfs):
    res = vfs.resolve("/a/b/f.txt")
    assert res.stats.components == 3


# -- symlinks ------------------------------------------------------------ #


def test_follow_relative_symlink(vfs, fs):
    a = fs.lookup(fs.root, "a")
    fs.symlink(a, "link", "b/f.txt", 1, 1)
    res = vfs.resolve("/a/link")
    assert res.exists
    assert res.require().is_file
    assert res.dir_path == "/a/b"  # the *target's* directory


def test_follow_absolute_symlink(vfs, fs):
    a = fs.lookup(fs.root, "a")
    fs.symlink(a, "abs", "/a/b/f.txt", 1, 1)
    res = vfs.resolve("/a/abs")
    assert res.exists
    assert res.dir_path == "/a/b"


def test_nofollow_stops_at_link(vfs, fs):
    a = fs.lookup(fs.root, "a")
    fs.symlink(a, "link", "b/f.txt", 1, 1)
    res = vfs.resolve("/a/link", follow=False)
    assert res.require().is_symlink


def test_intermediate_symlink_always_followed(vfs, fs):
    fs.symlink(fs.root, "toa", "a", 1, 1)
    res = vfs.resolve("/toa/b/f.txt", follow=False)
    assert res.require().is_file


def test_symlink_loop_is_eloop(vfs, fs):
    fs.symlink(fs.root, "s1", "s2", 1, 1)
    fs.symlink(fs.root, "s2", "s1", 1, 1)
    with pytest.raises(KernelError) as info:
        vfs.resolve("/s1")
    assert info.value.errno is Errno.ELOOP


def test_dangling_symlink_resolves_to_missing(vfs, fs):
    fs.symlink(fs.root, "dead", "nowhere", 1, 1)
    res = vfs.resolve("/dead")
    assert not res.exists


def test_symlink_count_in_stats(vfs, fs):
    a = fs.lookup(fs.root, "a")
    fs.symlink(a, "link", "b/f.txt", 1, 1)
    res = vfs.resolve("/a/link")
    assert res.stats.symlinks == 1


# -- traversal permissions ---------------------------------------------------- #


def test_traverse_requires_execute(vfs, fs):
    a = fs.lookup(fs.root, "a")
    a.mode = 0o600  # no execute bit
    cred = Credentials(uid=1, gid=1, username="u")
    with pytest.raises(KernelError) as info:
        vfs.resolve("/a/b/f.txt", cred)
    assert info.value.errno is Errno.EACCES


def test_traverse_allowed_with_execute(vfs, fs):
    cred = Credentials(uid=1, gid=1, username="u")
    assert vfs.resolve("/a/b/f.txt", cred).exists


def test_traverse_check_skippable(vfs, fs):
    a = fs.lookup(fs.root, "a")
    a.mode = 0o000
    cred = Credentials(uid=1, gid=1, username="u")
    res = vfs.resolve("/a/b/f.txt", cred, check_traverse=False)
    assert res.exists


def test_realpath(vfs, fs):
    fs.symlink(fs.root, "toa", "a", 1, 1)
    assert vfs.realpath("/toa/b/f.txt") == "/a/b/f.txt"
    assert vfs.realpath("/") == "/"


def test_empty_path_is_enoent(vfs):
    with pytest.raises(KernelError) as info:
        vfs.resolve("")
    assert info.value.errno is Errno.ENOENT
