"""The native syscall layer, exercised through host-agent kcalls."""

import pytest

from repro.kernel import (
    Errno,
    KernelError,
    OpenFlags,
    R_OK,
    SEEK_CUR,
    SEEK_END,
    SEEK_SET,
    W_OK,
    X_OK,
)


@pytest.fixture
def t(machine, alice):
    return machine.host_task(alice, cwd="/home/alice")


def write(machine, t, path, data=b"data", mode=0o644):
    machine.write_file(t, path, data, mode=mode)


# -- open/close -------------------------------------------------------------- #


def test_open_missing_without_creat(machine, t):
    assert machine.kcall(t, "open", "nope", OpenFlags.O_RDONLY) == -Errno.ENOENT


def test_open_creat_excl(machine, t):
    fd = machine.kcall_x(
        t, "open", "f", OpenFlags.O_WRONLY | OpenFlags.O_CREAT | OpenFlags.O_EXCL
    )
    machine.kcall_x(t, "close", fd)
    assert (
        machine.kcall(
            t, "open", "f", OpenFlags.O_WRONLY | OpenFlags.O_CREAT | OpenFlags.O_EXCL
        )
        == -Errno.EEXIST
    )


def test_open_trunc_clears_content(machine, t):
    write(machine, t, "f", b"old content")
    fd = machine.kcall_x(t, "open", "f", OpenFlags.O_WRONLY | OpenFlags.O_TRUNC)
    machine.kcall_x(t, "close", fd)
    assert machine.read_file(t, "f") == b""


def test_open_directory_for_write_is_eisdir(machine, t):
    machine.kcall_x(t, "mkdir", "d", 0o755)
    assert machine.kcall(t, "open", "d", OpenFlags.O_WRONLY) == -Errno.EISDIR


def test_open_o_directory_on_file(machine, t):
    write(machine, t, "f")
    assert (
        machine.kcall(t, "open", "f", OpenFlags.O_RDONLY | OpenFlags.O_DIRECTORY)
        == -Errno.ENOTDIR
    )


def test_open_checks_permissions(machine, t, alice):
    write(machine, t, "readonly", mode=0o400)
    assert machine.kcall(t, "open", "readonly", OpenFlags.O_WRONLY) == -Errno.EACCES


def test_creat_respects_umask(machine, t):
    t.umask = 0o077
    fd = machine.kcall_x(t, "open", "f", OpenFlags.O_WRONLY | OpenFlags.O_CREAT, 0o666)
    machine.kcall_x(t, "close", fd)
    st = machine.kcall_x(t, "stat", "f")
    assert st.st_mode & 0o777 == 0o600


def test_append_mode(machine, t):
    write(machine, t, "f", b"start")
    fd = machine.kcall_x(t, "open", "f", OpenFlags.O_WRONLY | OpenFlags.O_APPEND)
    machine.kcall_x(t, "write_bytes", fd, b"+end")
    machine.kcall_x(t, "close", fd)
    assert machine.read_file(t, "f") == b"start+end"


# -- read/write/seek ------------------------------------------------------- #


def test_sequential_read_advances_offset(machine, t):
    write(machine, t, "f", b"abcdef")
    fd = machine.kcall_x(t, "open", "f", OpenFlags.O_RDONLY)
    assert machine.kcall_x(t, "read_bytes", fd, 3) == b"abc"
    assert machine.kcall_x(t, "read_bytes", fd, 3) == b"def"
    assert machine.kcall_x(t, "read_bytes", fd, 3) == b""


def test_pread_does_not_move_offset(machine, t):
    write(machine, t, "f", b"abcdef")
    fd = machine.kcall_x(t, "open", "f", OpenFlags.O_RDONLY)
    assert machine.kcall_x(t, "pread_bytes", fd, 2, 4) == b"ef"
    assert machine.kcall_x(t, "read_bytes", fd, 2) == b"ab"


def test_write_to_readonly_fd_is_ebadf(machine, t):
    write(machine, t, "f")
    fd = machine.kcall_x(t, "open", "f", OpenFlags.O_RDONLY)
    assert machine.kcall(t, "write_bytes", fd, b"x") == -Errno.EBADF


def test_read_from_writeonly_fd_is_ebadf(machine, t):
    write(machine, t, "f")
    fd = machine.kcall_x(t, "open", "f", OpenFlags.O_WRONLY)
    assert machine.kcall(t, "read_bytes", fd, 1) == -Errno.EBADF


def test_lseek_whences(machine, t):
    write(machine, t, "f", b"0123456789")
    fd = machine.kcall_x(t, "open", "f", OpenFlags.O_RDONLY)
    assert machine.kcall_x(t, "lseek", fd, 4, SEEK_SET) == 4
    assert machine.kcall_x(t, "lseek", fd, 2, SEEK_CUR) == 6
    assert machine.kcall_x(t, "lseek", fd, -1, SEEK_END) == 9
    assert machine.kcall(t, "lseek", fd, -100, SEEK_SET) == -Errno.EINVAL
    assert machine.kcall(t, "lseek", fd, 0, 99) == -Errno.EINVAL


def test_ftruncate(machine, t):
    write(machine, t, "f", b"0123456789")
    fd = machine.kcall_x(t, "open", "f", OpenFlags.O_RDWR)
    machine.kcall_x(t, "ftruncate", fd, 4)
    machine.kcall_x(t, "close", fd)
    assert machine.read_file(t, "f") == b"0123"


def test_dup_shares_offset(machine, t):
    write(machine, t, "f", b"abcdef")
    fd = machine.kcall_x(t, "open", "f", OpenFlags.O_RDONLY)
    fd2 = machine.kcall_x(t, "dup", fd)
    machine.kcall_x(t, "read_bytes", fd, 3)
    assert machine.kcall_x(t, "read_bytes", fd2, 3) == b"def"


# -- metadata ------------------------------------------------------------ #


def test_stat_fields(machine, t):
    write(machine, t, "f", b"12345", mode=0o640)
    st = machine.kcall_x(t, "stat", "f")
    assert st.st_size == 5
    assert st.st_mode & 0o777 == 0o640
    assert st.is_file


def test_stat_follows_lstat_does_not(machine, t):
    write(machine, t, "f", b"123")
    machine.kcall_x(t, "symlink", "f", "link")
    assert machine.kcall_x(t, "stat", "link").is_file
    assert machine.kcall_x(t, "lstat", "link").is_symlink


def test_fstat_matches_stat(machine, t):
    write(machine, t, "f", b"abc")
    fd = machine.kcall_x(t, "open", "f", OpenFlags.O_RDONLY)
    assert machine.kcall_x(t, "fstat", fd).st_ino == machine.kcall_x(t, "stat", "f").st_ino


def test_access_modes(machine, t):
    write(machine, t, "f", mode=0o600)
    assert machine.kcall(t, "access", "f", R_OK | W_OK) == 0
    assert machine.kcall(t, "access", "f", X_OK) == -Errno.EACCES
    assert machine.kcall(t, "access", "ghost", R_OK) == -Errno.ENOENT


def test_readlink(machine, t):
    machine.kcall_x(t, "symlink", "/target", "l")
    assert machine.kcall_x(t, "readlink", "l") == "/target"
    write(machine, t, "plain")
    assert machine.kcall(t, "readlink", "plain") == -Errno.EINVAL


def test_chmod_owner_only(machine, t, alice):
    write(machine, t, "f")
    machine.kcall_x(t, "chmod", "f", 0o755)
    assert machine.kcall_x(t, "stat", "f").st_mode & 0o777 == 0o755
    bob = machine.add_user("bob")
    bob_task = machine.host_task(bob)
    assert machine.kcall(bob_task, "chmod", "/home/alice/f", 0o777) == -Errno.EPERM


def test_chown_root_only(machine, t, root_task):
    write(machine, t, "f")
    assert machine.kcall(t, "chown", "f", 0, 0) == -Errno.EPERM
    assert machine.kcall(root_task, "chown", "/home/alice/f", 0, 0) == 0


def test_truncate_path(machine, t):
    write(machine, t, "f", b"0123456789")
    machine.kcall_x(t, "truncate", "f", 2)
    assert machine.read_file(t, "f") == b"01"


# -- namespace ------------------------------------------------------------ #


def test_mkdir_rmdir(machine, t):
    machine.kcall_x(t, "mkdir", "d", 0o755)
    assert machine.kcall_x(t, "stat", "d").is_dir
    machine.kcall_x(t, "rmdir", "d")
    assert machine.kcall(t, "stat", "d") == -Errno.ENOENT


def test_mkdir_existing(machine, t):
    machine.kcall_x(t, "mkdir", "d", 0o755)
    assert machine.kcall(t, "mkdir", "d", 0o755) == -Errno.EEXIST


def test_unlink_and_rename(machine, t):
    write(machine, t, "a", b"1")
    machine.kcall_x(t, "rename", "a", "b")
    assert machine.kcall(t, "stat", "a") == -Errno.ENOENT
    assert machine.read_file(t, "b") == b"1"
    machine.kcall_x(t, "unlink", "b")
    assert machine.kcall(t, "stat", "b") == -Errno.ENOENT


def test_link_counts(machine, t):
    write(machine, t, "orig", b"x")
    machine.kcall_x(t, "link", "orig", "alias")
    assert machine.kcall_x(t, "stat", "orig").st_nlink == 2
    machine.kcall_x(t, "unlink", "orig")
    assert machine.read_file(t, "alias") == b"x"


def test_readdir_lists_names(machine, t):
    write(machine, t, "z")
    write(machine, t, "a")
    names = machine.kcall_x(t, "readdir", ".")
    assert names == sorted(names)
    assert {"a", "z"} <= set(names)


def test_readdir_requires_read_permission(machine, t, alice):
    machine.kcall_x(t, "mkdir", "private", 0o300)
    assert machine.kcall(t, "readdir", "private") == -Errno.EACCES


def test_chdir_getcwd(machine, t):
    machine.kcall_x(t, "mkdir", "sub", 0o755)
    machine.kcall_x(t, "chdir", "sub")
    assert machine.kcall_x(t, "getcwd") == "/home/alice/sub"
    machine.kcall_x(t, "chdir", "..")
    assert machine.kcall_x(t, "getcwd") == "/home/alice"


def test_chdir_to_file_is_enotdir(machine, t):
    write(machine, t, "f")
    assert machine.kcall(t, "chdir", "f") == -Errno.ENOTDIR


# -- identity & misc -------------------------------------------------------- #


def test_getuid_and_username(machine, t, alice):
    assert machine.kcall(t, "getuid") == alice.uid
    assert machine.kcall(t, "get_user_name") == "alice"


def test_unknown_syscall_is_enosys(machine, t):
    assert machine.kcall(t, "frobnicate") == -Errno.ENOSYS


def test_mount_and_ptrace_unimplemented(machine, t):
    assert machine.kcall(t, "mount") == -Errno.ENOSYS
    assert machine.kcall(t, "ptrace") == -Errno.ENOSYS


def test_kcall_x_raises(machine, t):
    with pytest.raises(KernelError) as info:
        machine.kcall_x(t, "stat", "ghost")
    assert info.value.errno is Errno.ENOENT


def test_every_kcall_charges_trap_time(machine, t):
    before = machine.clock.now_ns
    machine.kcall(t, "getuid")
    assert machine.clock.now_ns - before >= machine.costs.syscall_trap_ns
