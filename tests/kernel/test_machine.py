"""Processes, the scheduler, signals, and spawn/wait semantics."""

import pytest

from repro.kernel import (
    Errno,
    Machine,
    OpenFlags,
    ProcessState,
    Signal,
    WaitResult,
)
from tests.helpers import run_calls


def test_spawn_runs_body_to_exit(machine, alice):
    seen = []

    def body(proc, args):
        seen.append(args)
        yield proc.compute(us=10)
        return 42

    proc = machine.spawn(body, ["a", "b"], cred=alice, comm="t")
    machine.run_to_completion()
    assert proc.exit_status == 42
    assert seen == [["a", "b"]]
    assert proc.state is ProcessState.DEAD


def test_explicit_exit_syscall(machine, alice):
    def body(proc, args):
        yield proc.sys.exit(7)
        raise AssertionError("unreachable")  # pragma: no cover

    proc = machine.spawn(body, cred=alice)
    machine.run_to_completion()
    assert proc.exit_status == 7


def test_compute_advances_clock(machine, alice):
    def body(proc, args):
        yield proc.compute(ms=3)
        return 0

    machine.spawn(body, cred=alice)
    start = machine.clock.now_ns
    machine.run_to_completion()
    assert machine.clock.snapshot().get("compute") == 3_000_000
    assert machine.clock.now_ns > start


def test_process_syscalls_counted(machine, alice):
    results = run_calls([("getpid",), ("getuid",)], machine=machine, cred=alice)
    assert machine.proc_syscalls >= 2
    assert results[1] == alice.uid


def test_waitpid_reaps_child(machine, alice, alice_task):
    machine.register_program("child", lambda proc, args: iter(()))

    def child(proc, args):
        yield proc.compute(us=5)
        return 3

    def parent(proc, args):
        # spawn via file to exercise the full path
        result = yield proc.sys.waitpid()
        return result

    # direct spawn-with-ppid: create child as parent's child manually
    parent_proc = machine.spawn(parent, cred=alice, comm="parent")
    machine.spawn(child, cred=alice, ppid=parent_proc.pid, comm="child")
    machine.run_to_completion()
    # parent's body returned the WaitResult; return values aren't exit codes
    # for non-int, so exit status defaults to 0 — inspect instead:
    assert parent_proc.exit_status == 0
    assert not machine.process(parent_proc.pid).children


def test_waitpid_with_no_children_is_echild(machine, alice):
    results = run_calls([("waitpid",)], machine=machine, cred=alice)
    assert results == [-Errno.ECHILD]


def test_waitpid_blocks_until_child_exits(machine, alice):
    order = []

    def child(proc, args):
        yield proc.compute(us=50)
        order.append("child-done")
        return 9

    def parent(proc, args):
        result = yield proc.sys.waitpid()
        order.append(("reaped", result.pid, result.status))
        return 0

    pproc = machine.spawn(parent, cred=alice)
    cproc = machine.spawn(child, cred=alice, ppid=pproc.pid)
    machine.run_to_completion()
    assert order == ["child-done", ("reaped", cproc.pid, 9)]


def test_spawn_from_file(machine, alice, alice_task):
    def hello(proc, args):
        yield proc.compute(us=1)
        return 5

    machine.register_program("hello", hello)
    machine.install_program(alice_task, "/home/alice/hello.exe", "hello")
    results = run_calls(
        [("spawn", "/home/alice/hello.exe", ()), ("waitpid",)],
        machine=machine,
        cred=alice,
        cwd="/home/alice",
    )
    pid = results[0]
    assert pid > 0
    assert isinstance(results[1], WaitResult)
    assert results[1].status == 5


def test_spawn_requires_execute_bit(machine, alice, alice_task):
    machine.register_program("p", lambda proc, args: iter(()))
    machine.install_program(alice_task, "/home/alice/p.exe", "p", mode=0o644)
    results = run_calls(
        [("spawn", "/home/alice/p.exe", ())],
        machine=machine,
        cred=alice,
        cwd="/home/alice",
    )
    assert results == [-Errno.EACCES]


def test_spawn_unregistered_program(machine, alice, alice_task):
    machine.write_file(alice_task, "/home/alice/bad.exe", b"#!repro:ghost\n", mode=0o755)
    results = run_calls(
        [("spawn", "/home/alice/bad.exe", ())],
        machine=machine,
        cred=alice,
        cwd="/home/alice",
    )
    assert results == [-Errno.ENOENT]


def test_spawn_non_executable_content(machine, alice, alice_task):
    machine.write_file(alice_task, "/home/alice/data.exe", b"not a program", mode=0o755)
    results = run_calls(
        [("spawn", "/home/alice/data.exe", ())],
        machine=machine,
        cred=alice,
        cwd="/home/alice",
    )
    assert results == [-Errno.ENOSYS]


def test_orphan_children_reparented(machine, alice):
    def child(proc, args):
        yield proc.compute(ms=1)
        return 0

    def parent(proc, args):
        yield proc.compute(us=1)
        return 0  # exits before child

    pproc = machine.spawn(parent, cred=alice)
    cproc = machine.spawn(child, cred=alice, ppid=pproc.pid)
    machine.run_to_completion()
    assert cproc.ppid == 0
    assert cproc.state is ProcessState.DEAD  # auto-reaped as orphan


# -- signals ------------------------------------------------------------ #


def test_kill_terminates_target(machine, alice):
    def victim(proc, args):
        while True:
            yield proc.compute(us=10)

    vproc = machine.spawn(victim, cred=alice)

    def killer(proc, args):
        result = yield proc.sys.kill(vproc.pid, Signal.SIGKILL)
        return result

    kproc = machine.spawn(killer, cred=alice)
    machine.run(max_steps=10_000)
    assert not vproc.alive
    assert vproc.exit_status == 128 + int(Signal.SIGKILL)
    assert kproc.exit_status == 0


def test_kill_cross_uid_denied(machine, alice):
    bob = machine.add_user("bob")

    def victim(proc, args):
        yield proc.compute(ms=1)
        return 0

    vproc = machine.spawn(victim, cred=alice)
    bob_task = machine.host_task(bob)
    assert machine.kcall(bob_task, "kill", vproc.pid, Signal.SIGTERM) == -Errno.EPERM
    machine.run_to_completion()


def test_kill_missing_process_is_esrch(machine, alice, alice_task):
    assert machine.kcall(alice_task, "kill", 99999, Signal.SIGTERM) == -Errno.ESRCH


def test_sigchld_ignored_by_default(machine, alice, alice_task):
    def victim(proc, args):
        yield proc.compute(ms=1)
        return 0

    vproc = machine.spawn(victim, cred=alice)
    assert machine.kcall(alice_task, "kill", vproc.pid, Signal.SIGCHLD) == 0
    machine.run_to_completion()
    assert vproc.exit_status == 0  # survived the ignored signal


def test_root_may_signal_anyone(machine, alice, root_task):
    def victim(proc, args):
        while True:
            yield proc.compute(us=10)

    vproc = machine.spawn(victim, cred=alice)
    assert machine.kcall(root_task, "kill", vproc.pid, Signal.SIGKILL) == 0
    assert not vproc.alive


# -- scheduler robustness ---------------------------------------------------- #


def test_run_to_completion_detects_deadlock(machine, alice):
    def waiter(proc, args):
        yield proc.sys.waitpid()
        return 0

    parent = machine.spawn(waiter, cred=alice)

    def immortal(proc, args):
        while True:
            yield proc.compute(us=1)

    machine.spawn(immortal, cred=alice, ppid=parent.pid)
    with pytest.raises(RuntimeError):
        machine.run(max_steps=1000)  # livelock guard trips


def test_crashed_body_becomes_signal_exit(machine, alice):
    from repro.kernel.errno import err

    def crasher(proc, args):
        yield proc.compute(us=1)
        raise err(Errno.EFAULT, "wild pointer")

    proc = machine.spawn(crasher, cred=alice)
    machine.run_to_completion()
    assert not proc.alive
    assert proc.exit_status > 128


def test_context_switch_charged_between_processes(machine, alice):
    def worker(proc, args):
        for _ in range(3):
            yield proc.compute(us=1)
        return 0

    machine.spawn(worker, cred=alice)
    machine.spawn(worker, cred=alice)
    machine.run_to_completion()
    assert machine.clock.snapshot().get("switch", 0) > 0


def test_single_process_run_has_no_switches(machine, alice):
    def worker(proc, args):
        for _ in range(5):
            yield proc.compute(us=1)
        return 0

    machine.spawn(worker, cred=alice)
    machine.run_to_completion()
    assert machine.clock.snapshot().get("switch", 0) == 0


def test_add_user_creates_home(machine):
    carol = machine.add_user("carol")
    task = machine.host_task(carol)
    st = machine.kcall_x(task, "stat", "/home/carol")
    assert st.is_dir
    assert st.st_uid == carol.uid


def test_passwd_file_refreshed(machine):
    machine.add_user("dave")
    root = machine.host_task(machine.users.credentials_for("root"))
    text = machine.read_file(root, "/etc/passwd").decode()
    assert any(line.startswith("dave:x:") for line in text.splitlines())


def test_shared_clock_between_machines():
    from repro.kernel.timing import Clock

    clock = Clock()
    m1 = Machine(clock=clock, hostname="h1")
    m2 = Machine(clock=clock, hostname="h2")
    t1 = m1.host_task(m1.users.credentials_for("root"))
    before = clock.now_ns
    m1.kcall(t1, "getuid")
    assert m2.clock.now_ns == clock.now_ns > before
