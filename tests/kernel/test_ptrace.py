"""The tracing interface: stops, peeks, pokes, rewrites, and their costs."""

import pytest

from repro.kernel import Machine, Regs
from repro.kernel.memory import words_for
from repro.kernel.ptrace import REGS_WORDS


class RecordingTracer:
    """A minimal tracer that logs stops and can rewrite calls."""

    def __init__(self, machine):
        self.machine = machine
        self.entries = []
        self.exits = []
        self.exited = []
        self.rewrite_to = None  # (name, args) or "nullify"
        self.force_result = None

    def on_syscall_entry(self, proc):
        regs = self.machine.trace.peek_regs(proc)
        self.entries.append((regs.name, regs.args))
        if self.rewrite_to == "nullify":
            self.machine.trace.nullify(proc)
        elif self.rewrite_to is not None:
            self.machine.trace.rewrite(proc, *self.rewrite_to)

    def on_syscall_exit(self, proc):
        regs = self.machine.trace.peek_regs(proc)
        self.exits.append(regs.retval)
        if self.force_result is not None:
            self.machine.trace.set_result(proc, self.force_result)

    def on_process_exit(self, proc):
        self.exited.append(proc.pid)


@pytest.fixture
def tracer(machine):
    return RecordingTracer(machine)


def spawn_traced(machine, alice, tracer, body):
    return machine.spawn(body, cred=alice, tracer=tracer, comm="traced")


def test_tracer_sees_entry_and_exit(machine, alice, tracer):
    def body(proc, args):
        yield proc.sys.getuid()
        return 0

    spawn_traced(machine, alice, tracer, body)
    machine.run_to_completion()
    assert tracer.entries == [("getuid", ())]
    assert tracer.exits == [alice.uid]
    assert len(tracer.exited) == 1


def test_nullified_call_executes_getpid(machine, alice, tracer):
    tracer.rewrite_to = "nullify"
    results = []

    def body(proc, args):
        results.append((yield proc.sys.getuid()))
        return 0

    proc = spawn_traced(machine, alice, tracer, body)
    machine.run_to_completion()
    # the child received the *getpid* result, not its uid
    assert results == [proc.pid]


def test_forced_result_overrides_native(machine, alice, tracer):
    tracer.rewrite_to = "nullify"
    tracer.force_result = "synthetic"
    results = []

    def body(proc, args):
        results.append((yield proc.sys.getuid()))
        return 0

    spawn_traced(machine, alice, tracer, body)
    machine.run_to_completion()
    assert results == ["synthetic"]


def test_rewrite_changes_the_call(machine, alice, tracer):
    tracer.rewrite_to = ("getpid", ())
    results = []

    def body(proc, args):
        results.append((yield proc.sys.getuid()))
        return 0

    proc = spawn_traced(machine, alice, tracer, body)
    machine.run_to_completion()
    assert results == [proc.pid]


def test_exit_notifies_tracer(machine, alice, tracer):
    def body(proc, args):
        yield proc.compute(us=1)
        return 0

    proc = spawn_traced(machine, alice, tracer, body)
    machine.run_to_completion()
    assert tracer.exited == [proc.pid]


def test_traced_calls_cost_more_than_untraced(alice):
    def body(proc, args):
        for _ in range(100):
            yield proc.sys.getpid()
        return 0

    plain = Machine()
    cred_p = plain.add_user("u")
    plain.spawn(body, cred=cred_p)
    plain.run_to_completion()

    traced = Machine()
    cred_t = traced.add_user("u")
    tracer = RecordingTracer(traced)
    traced.spawn(body, cred=cred_t, tracer=tracer)
    traced.run_to_completion()

    assert traced.clock.now_ns > 5 * plain.clock.now_ns


def test_peek_bytes_charges_per_word(machine, alice):
    done = []

    class PeekTracer(RecordingTracer):
        def on_syscall_entry(self, proc):
            regs = self.machine.trace.peek_regs(proc)
            if regs.name == "getuid":
                addr = proc.context.scratch["addr"]
                before = self.machine.clock.now_ns
                data = self.machine.trace.peek_bytes(proc, addr, 8000)
                cost = self.machine.clock.now_ns - before
                expected = words_for(8000) * (
                    self.machine.costs.syscall_trap_ns
                    + self.machine.costs.ptrace_word_ns
                )
                done.append((data[:4], cost, expected))

    tracer = PeekTracer(machine)

    def body(proc, args):
        addr = proc.alloc_bytes(b"ABCD" + b"\x00" * 7996)
        proc.scratch["addr"] = addr
        yield proc.sys.getuid()
        return 0

    machine.spawn(body, cred=alice, tracer=tracer)
    machine.run_to_completion()
    data, cost, expected = done[0]
    assert data == b"ABCD"
    assert cost == expected  # word-at-a-time ptrace pricing


def test_poke_bytes_writes_child_memory(machine, alice):
    class PokeTracer(RecordingTracer):
        def on_syscall_entry(self, proc):
            regs = self.machine.trace.peek_regs(proc)
            if regs.name == "getuid":
                self.machine.trace.poke_bytes(
                    proc, proc.context.scratch["addr"], b"injected"
                )

    tracer = PokeTracer(machine)
    seen = []

    def body(proc, args):
        addr = proc.alloc(16)
        proc.scratch["addr"] = addr
        yield proc.sys.getuid()
        seen.append(proc.read_buffer(addr, 8))
        return 0

    machine.spawn(body, cred=alice, tracer=tracer)
    machine.run_to_completion()
    assert seen == [b"injected"]


def test_peek_regs_charges_fixed_words(machine, alice, tracer):
    def body(proc, args):
        yield proc.sys.getpid()
        return 0

    # measure one peek_regs in isolation
    proc = spawn_traced(machine, alice, tracer, body)
    machine.run()  # drives the whole thing; entry/exit each peeked once
    per_peek = machine.costs.syscall_trap_ns + machine.costs.peekpoke_cost(REGS_WORDS)
    assert machine.clock.snapshot()["trace"] == 2 * per_peek


def test_string_peek_cost_scales_with_length(machine, alice):
    costs = []

    class StrTracer(RecordingTracer):
        def on_syscall_entry(self, proc):
            regs = self.machine.trace.peek_regs(proc)
            before = self.machine.clock.now_ns
            self.machine.trace.peek_string_cost(proc, regs.args[0])
            costs.append(self.machine.clock.now_ns - before)

    tracer = StrTracer(machine)

    def body(proc, args):
        yield proc.sys.stat("x")
        yield proc.sys.stat("x" * 100)
        return 0

    machine.spawn(body, cred=alice, tracer=tracer)
    machine.run_to_completion()
    assert costs[1] > costs[0]
