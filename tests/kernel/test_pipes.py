"""Pipes: blocking IPC in the simulated kernel (§6's wait-state claim)."""

import pytest

from repro.kernel import Errno, Machine, ProcessState
from repro.kernel.pipes import PIPE_CAPACITY, Pipe, WouldBlock


# -- the Pipe object itself ---------------------------------------------------- #


def test_fifo_order():
    pipe = Pipe()
    pipe.add_end("r")
    pipe.add_end("w")
    pipe.write(b"abc")
    pipe.write(b"def")
    assert pipe.read(4) == b"abcd"
    assert pipe.read(10) == b"ef"


def test_read_empty_with_writer_blocks():
    pipe = Pipe()
    pipe.add_end("r")
    pipe.add_end("w")
    with pytest.raises(WouldBlock) as info:
        pipe.read(1)
    assert info.value.mode == "read"


def test_read_empty_without_writers_is_eof():
    pipe = Pipe()
    pipe.add_end("r")
    assert pipe.read(8) == b""


def test_write_full_blocks():
    pipe = Pipe(capacity=4)
    pipe.add_end("r")
    pipe.add_end("w")
    assert pipe.write(b"12345678") == 4  # partial write fills it
    with pytest.raises(WouldBlock):
        pipe.write(b"x")


def test_wakeable_sets():
    pipe = Pipe(capacity=4)
    pipe.add_end("r")
    pipe.add_end("w")
    pipe.park(100, "read")
    assert pipe.take_wakeable() == []  # nothing to read yet
    pipe.write(b"x")
    pipe.park(100, "read")
    assert pipe.take_wakeable() == [100]
    assert pipe.take_wakeable() == []  # drained


def test_default_capacity():
    assert Pipe().capacity == PIPE_CAPACITY


# -- syscall layer (host agents get EAGAIN, never block) ----------------------- #


def test_host_agent_pipe_roundtrip(machine, alice, alice_task):
    rfd, wfd = machine.kcall_x(alice_task, "pipe")
    assert machine.kcall_x(alice_task, "write_bytes", wfd, b"ping") == 4
    assert machine.kcall_x(alice_task, "read_bytes", rfd, 16) == b"ping"


def test_host_agent_empty_read_is_eagain(machine, alice_task):
    rfd, _wfd = machine.kcall_x(alice_task, "pipe")
    assert machine.kcall(alice_task, "read_bytes", rfd, 1) == -Errno.EAGAIN


def test_eof_after_writer_closes(machine, alice_task):
    rfd, wfd = machine.kcall_x(alice_task, "pipe")
    machine.kcall_x(alice_task, "write_bytes", wfd, b"last")
    machine.kcall_x(alice_task, "close", wfd)
    assert machine.kcall_x(alice_task, "read_bytes", rfd, 16) == b"last"
    assert machine.kcall_x(alice_task, "read_bytes", rfd, 16) == b""


def test_epipe_after_reader_closes(machine, alice_task):
    rfd, wfd = machine.kcall_x(alice_task, "pipe")
    machine.kcall_x(alice_task, "close", rfd)
    assert machine.kcall(alice_task, "write_bytes", wfd, b"x") == -Errno.EPIPE


def test_pipe_rejects_seek_pread_truncate(machine, alice_task):
    rfd, wfd = machine.kcall_x(alice_task, "pipe")
    assert machine.kcall(alice_task, "lseek", rfd, 0, 0) == -Errno.ESPIPE
    assert machine.kcall(alice_task, "pread_bytes", rfd, 1, 0) == -Errno.ESPIPE
    assert machine.kcall(alice_task, "pwrite_bytes", wfd, b"x", 0) == -Errno.ESPIPE
    assert machine.kcall(alice_task, "ftruncate", wfd, 0) == -Errno.EINVAL


def test_fstat_reports_fifo(machine, alice_task):
    import stat as stat_mod

    rfd, wfd = machine.kcall_x(alice_task, "pipe")
    machine.kcall_x(alice_task, "write_bytes", wfd, b"abc")
    st = machine.kcall_x(alice_task, "fstat", rfd)
    assert stat_mod.S_ISFIFO(st.st_mode)
    assert st.st_size == 3


def test_dup_shares_pipe_end(machine, alice_task):
    rfd, wfd = machine.kcall_x(alice_task, "pipe")
    wfd2 = machine.kcall_x(alice_task, "dup", wfd)
    machine.kcall_x(alice_task, "close", wfd)
    # the duplicated end keeps the pipe writable: no EOF yet
    assert machine.kcall(alice_task, "read_bytes", rfd, 1) == -Errno.EAGAIN
    machine.kcall_x(alice_task, "close", wfd2)
    assert machine.kcall_x(alice_task, "read_bytes", rfd, 1) == b""


# -- process blocking: the actual §6 behaviour --------------------------------- #


def _producer_consumer(machine, alice, *, chunks, chunk_size=1000):
    """Parent consumer spawns a producer child that inherits the pipe's
    write end through the fork+exec descriptor copy."""
    received = []

    def producer(proc, args):
        wfd = int(args[0])
        yield proc.compute(us=10)
        addr = proc.alloc(chunk_size)
        for i in range(chunks):
            proc.memory.write(addr, bytes([i % 251]) * chunk_size)
            yield proc.sys.write(wfd, addr, chunk_size)
        yield proc.sys.close(wfd)
        return 0

    machine.register_program("producer", producer)
    task = machine.host_task(alice)
    machine.install_program(task, "/home/alice/prod.exe", "producer")

    child_pid = []

    def parent(proc, args):
        rfd, wfd = yield proc.sys.pipe()
        pid = yield proc.sys.spawn("/home/alice/prod.exe", (str(wfd),))
        child_pid.append(pid)
        yield proc.sys.close(wfd)  # parent keeps only the read end
        buf = proc.alloc(8192)
        while True:
            n = yield proc.sys.read(rfd, buf, 8192)
            if n == 0:
                break
            received.append(proc.read_buffer(buf, n))
        yield proc.sys.close(rfd)
        yield proc.sys.waitpid()
        return 0

    pproc = machine.spawn(parent, cred=alice, comm="consumer")
    machine.run_to_completion()
    cproc = machine.process(child_pid[0])
    return pproc, cproc, b"".join(received)


def test_blocking_producer_consumer(machine, alice):
    pproc, cproc, data = _producer_consumer(machine, alice, chunks=5)
    assert pproc.exit_status == 0 and cproc.exit_status == 0
    assert len(data) == 5000
    assert data[:3] == b"\x00\x00\x00"


def test_consumer_blocks_until_producer_writes(machine, alice):
    """The consumer runs first and must park, not spin or fail."""
    pproc, cproc, data = _producer_consumer(machine, alice, chunks=1)
    assert len(data) == 1000
    assert pproc.state is ProcessState.DEAD


def test_producer_blocks_when_pipe_full(machine, alice):
    """Write volume far beyond capacity forces writer-side parking."""
    chunks = (PIPE_CAPACITY // 1000) + 40
    pproc, cproc, data = _producer_consumer(machine, alice, chunks=chunks)
    assert len(data) == chunks * 1000


def test_reader_blocked_forever_is_reported_as_deadlock(machine, alice):
    def reader_only(proc, args):
        rfd, wfd = yield proc.sys.pipe()
        buf = proc.alloc(16)
        yield proc.sys.read(rfd, buf, 16)  # no writer will ever write
        return 0

    machine.spawn(reader_only, cred=alice)
    with pytest.raises(RuntimeError, match="deadlock"):
        machine.run_to_completion()


def test_killing_blocked_reader_cleans_up(machine, alice):
    from repro.kernel import Signal

    def reader_only(proc, args):
        rfd, _wfd = yield proc.sys.pipe()
        buf = proc.alloc(16)
        yield proc.sys.read(rfd, buf, 16)
        return 0

    proc = machine.spawn(reader_only, cred=alice)
    machine.run()  # parks the reader
    assert proc.state is ProcessState.BLOCKED
    root = machine.host_task(machine.users.credentials_for("root"))
    machine.kcall_x(root, "kill", proc.pid, Signal.SIGKILL)
    assert not proc.alive


def test_exit_of_writer_wakes_blocked_reader(machine, alice):
    got = []

    def reader(proc, args):
        rfd, wfd = yield proc.sys.pipe()
        proc.scratch["fds"] = (rfd, wfd)
        yield proc.sys.close(wfd)
        buf = proc.alloc(16)
        n = yield proc.sys.read(rfd, buf, 16)
        got.append(n)
        return 0

    # a single process whose only write end is closed: EOF immediately
    machine.spawn(reader, cred=alice)
    machine.run_to_completion()
    assert got == [0]
