"""Threads: shared Task, own pid, §6's multi-threading claim."""

import pytest

from repro.core.box import IdentityBox
from repro.kernel import Errno, OpenFlags, ProcessState, WaitResult


def test_thread_shares_memory(machine, alice):
    def worker(proc, args):
        yield proc.compute(us=5)
        proc.memory.write(proc.scratch["addr"], b"from thread")
        return 0

    def main(proc, args):
        addr = proc.alloc(16)
        tid = yield proc.sys.thread(worker)
        machine.process(tid).context.scratch["addr"] = addr
        result = yield proc.sys.waitpid()
        proc.scratch["joined"] = result
        proc.scratch["data"] = proc.read_buffer(addr, 11)
        return 0

    proc = machine.spawn(main, cred=alice)
    machine.run_to_completion()
    assert proc.context.scratch["data"] == b"from thread"
    assert isinstance(proc.context.scratch["joined"], WaitResult)


def test_thread_shares_descriptors(machine, alice, alice_task):
    machine.write_file(alice_task, "/home/alice/shared.txt", b"0123456789")
    chunks = []

    def reader_thread(proc, args):
        fd = int(args[0])
        buf = proc.alloc(4)
        n = yield proc.sys.read(fd, buf, 4)
        chunks.append(("thread", proc.read_buffer(buf, n)))
        return 0

    def main(proc, args):
        fd = yield proc.sys.open("/home/alice/shared.txt", OpenFlags.O_RDONLY)
        buf = proc.alloc(4)
        n = yield proc.sys.read(fd, buf, 4)
        chunks.append(("main", proc.read_buffer(buf, n)))
        yield proc.sys.thread(reader_thread, (str(fd),))
        yield proc.sys.waitpid()
        yield proc.sys.close(fd)
        return 0

    machine.spawn(main, cred=alice, cwd="/home/alice")
    machine.run_to_completion()
    # the offset is shared: the thread continues where main stopped
    assert chunks == [("main", b"0123"), ("thread", b"4567")]


def test_thread_exit_does_not_close_shared_fds(machine, alice, alice_task):
    machine.write_file(alice_task, "/home/alice/f", b"abcdef")
    results = []

    def opener_thread(proc, args):
        fd = yield proc.sys.open("/home/alice/f", OpenFlags.O_RDONLY)
        proc.scratch["fd"] = fd
        return 0  # exits; table must survive

    def main(proc, args):
        tid = yield proc.sys.thread(opener_thread)
        yield proc.sys.waitpid()
        fd = machine.process(tid).context.scratch["fd"]
        buf = proc.alloc(8)
        results.append((yield proc.sys.read(fd, buf, 8)))
        yield proc.sys.close(fd)
        return 0

    machine.spawn(main, cred=alice)
    machine.run_to_completion()
    assert results == [6]


def test_threads_communicate_through_a_pipe(machine, alice):
    received = []

    def producer(proc, args):
        wfd = int(args[0])
        addr = proc.alloc_bytes(b"tick")
        for _ in range(10):
            yield proc.sys.write(wfd, addr, 4)
        yield proc.sys.close(wfd)
        return 0

    def main(proc, args):
        rfd, wfd = yield proc.sys.pipe()
        yield proc.sys.thread(producer, (str(wfd),))
        buf = proc.alloc(64)
        while True:
            n = yield proc.sys.read(rfd, buf, 64)
            if n == 0:
                break
            received.append(proc.read_buffer(buf, n))
        # note: main still holds wfd; the producer closing its *shared*
        # reference means EOF arrives only when main also closes it — so
        # main closes right after spawning reads begin... simplest: close
        # before the loop would race; here the producer's close drops the
        # only registered end because the description is shared
        yield proc.sys.close(rfd)
        yield proc.sys.waitpid()
        return 0

    proc = machine.spawn(main, cred=alice)
    machine.run(max_steps=100_000)
    assert b"".join(received).startswith(b"tick")


def test_host_agents_cannot_thread(machine, alice_task):
    assert machine.kcall(alice_task, "thread", lambda p, a: iter(())) == -Errno.EINVAL


def test_thread_factory_must_be_callable(machine, alice):
    results = []

    def main(proc, args):
        results.append((yield proc.sys.thread("not-callable")))
        return 0

    machine.spawn(main, cred=alice)
    machine.run_to_completion()
    assert results == [-Errno.EINVAL]


# -- boxed threads ------------------------------------------------------------ #


def test_boxed_thread_inherits_identity(machine, alice):
    box = IdentityBox(machine, alice, "Threader")
    names = []

    def worker(proc, args):
        name = yield proc.sys.get_user_name()
        names.append(name)
        return 0

    def main(proc, args):
        yield proc.sys.thread(worker)
        yield proc.sys.waitpid()
        return 0

    box.spawn(main)
    machine.run_to_completion()
    assert names == ["Threader"]


def test_boxed_thread_shares_vfds(machine, alice):
    box = IdentityBox(machine, alice, "Threader")
    results = []

    def worker(proc, args):
        fd = int(args[0])
        addr = proc.alloc_bytes(b" world")
        results.append((yield proc.sys.write(fd, addr, 6)))
        return 0

    def main(proc, args):
        fd = yield proc.sys.open("out.txt", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
        addr = proc.alloc_bytes(b"hello")
        yield proc.sys.write(fd, addr, 5)
        yield proc.sys.thread(worker, (str(fd),))
        yield proc.sys.waitpid()
        yield proc.sys.close(fd)
        return 0

    proc = box.spawn(main)
    machine.run_to_completion()
    assert proc.exit_status == 0
    assert results == [6]
    data = machine.read_file(box.owner_task, f"{box.home}/out.txt")
    assert data == b"hello world"


def test_boxed_thread_exit_keeps_siblings_working(machine, alice):
    box = IdentityBox(machine, alice, "Threader")

    def short_lived(proc, args):
        yield proc.compute(us=1)
        return 0

    def main(proc, args):
        fd = yield proc.sys.open("keep.txt", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
        yield proc.sys.thread(short_lived)
        yield proc.sys.waitpid()
        # the fd must still be valid after the thread exited
        addr = proc.alloc_bytes(b"alive")
        proc.scratch["w"] = yield proc.sys.write(fd, addr, 5)
        yield proc.sys.close(fd)
        return 0

    proc = box.spawn(main)
    machine.run_to_completion()
    assert proc.context.scratch["w"] == 5


def test_boxed_threads_still_contained(machine, alice, alice_task):
    machine.write_file(alice_task, "/home/alice/secret", b"s", mode=0o600)
    box = IdentityBox(machine, alice, "Threader")
    results = []

    def hostile_thread(proc, args):
        results.append((yield proc.sys.open("/home/alice/secret", OpenFlags.O_RDONLY)))
        return 0

    def main(proc, args):
        yield proc.sys.thread(hostile_thread)
        yield proc.sys.waitpid()
        return 0

    box.spawn(main)
    machine.run_to_completion()
    assert results == [-Errno.EACCES]
