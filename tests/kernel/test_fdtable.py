"""Descriptor tables and open-file descriptions."""

import pytest

from repro.kernel.errno import Errno, KernelError
from repro.kernel.fdtable import FDTable, OpenFile, OpenFlags
from repro.kernel.inode import FileType, Inode


def make_of(flags=OpenFlags.O_RDONLY):
    inode = Inode(ino=9, ftype=FileType.FILE, mode=0o644, uid=1, gid=1)
    inode.data.extend(b"0123456789")
    return OpenFile(inode=inode, flags=flags, path="/f")


@pytest.fixture
def table():
    return FDTable()


def test_install_starts_at_three(table):
    assert table.install(make_of()) == 3
    assert table.install(make_of()) == 4


def test_get_returns_installed(table):
    of = make_of()
    fd = table.install(of)
    assert table.get(fd) is of


def test_get_bad_fd(table):
    with pytest.raises(KernelError) as info:
        table.get(42)
    assert info.value.errno is Errno.EBADF


def test_close_frees_and_reuses_lowest(table):
    fd_a = table.install(make_of())
    table.install(make_of())
    table.close(fd_a)
    assert table.install(make_of()) == fd_a


def test_double_close_is_ebadf(table):
    fd = table.install(make_of())
    table.close(fd)
    with pytest.raises(KernelError):
        table.close(fd)


def test_dup_shares_description(table):
    of = make_of()
    fd = table.install(of)
    fd2 = table.dup(fd)
    assert fd2 != fd
    assert table.get(fd2) is of
    assert of.refcount == 2


def test_dup_shares_offset(table):
    of = make_of()
    fd = table.install(of)
    fd2 = table.dup(fd)
    table.get(fd).offset = 5
    assert table.get(fd2).offset == 5


def test_close_decrements_refcount(table):
    of = make_of()
    fd = table.install(of)
    fd2 = table.dup(fd)
    table.close(fd)
    assert of.refcount == 1
    table.close(fd2)
    assert of.refcount == 0


def test_fork_copy_shares_descriptions(table):
    of = make_of()
    fd = table.install(of)
    child = table.fork_copy()
    assert child.get(fd) is of
    assert of.refcount == 2
    child.get(fd).offset = 7
    assert table.get(fd).offset == 7  # shared offset, as after fork(2)


def test_close_all(table):
    of = make_of()
    table.install(of)
    table.install(make_of())
    table.close_all()
    assert len(table) == 0
    assert of.refcount == 0


def test_open_fds_sorted(table):
    table.install(make_of())
    table.install(make_of())
    assert table.open_fds() == [3, 4]


def test_install_at_specific_fd(table):
    of = make_of()
    assert table.install(of, fd=100) == 100
    assert table.get(100) is of


def test_install_over_existing_replaces(table):
    first = make_of()
    table.install(first, fd=50)
    second = make_of()
    table.install(second, fd=50)
    assert table.get(50) is second
    assert first.refcount == 0


def test_accmode_predicates():
    assert OpenFlags.O_RDONLY.readable and not OpenFlags.O_RDONLY.writable
    assert OpenFlags.O_WRONLY.writable and not OpenFlags.O_WRONLY.readable
    rdwr = OpenFlags.O_RDWR
    assert rdwr.readable and rdwr.writable
    combined = OpenFlags.O_WRONLY | OpenFlags.O_CREAT | OpenFlags.O_TRUNC
    assert combined.writable and not combined.readable


def test_seek_end():
    of = make_of()
    of.seek_end()
    assert of.offset == 10
