"""Clock and cost model."""

import pytest

from repro.kernel.timing import Clock, CostModel, NS_PER_S, NS_PER_US


def test_clock_starts_at_zero():
    assert Clock().now_ns == 0


def test_advance_accumulates():
    clock = Clock()
    clock.advance(100)
    clock.advance(250)
    assert clock.now_ns == 350


def test_advance_rejects_negative():
    with pytest.raises(ValueError):
        Clock().advance(-1)


def test_charge_categories_tracked():
    clock = Clock()
    clock.advance(100, "io")
    clock.advance(50, "io")
    clock.advance(10, "trap")
    assert clock.snapshot() == {"io": 150, "trap": 10}


def test_zero_advance_not_recorded():
    clock = Clock()
    clock.advance(0, "io")
    assert clock.snapshot() == {}


def test_unit_properties():
    clock = Clock()
    clock.advance(NS_PER_S)
    assert clock.now_s == 1.0
    assert clock.now_us == 1_000_000.0


def test_elapsed_since():
    clock = Clock()
    clock.advance(500)
    mark = clock.now_ns
    clock.advance(700)
    assert clock.elapsed_since(mark) == 700


def test_copy_cost_scales_linearly():
    costs = CostModel()
    assert costs.copy_cost(0) == 0
    assert costs.copy_cost(2000) == 2 * costs.copy_cost(1000)


def test_copy_cost_sub_nanosecond_precision():
    # 0.5 ns/byte stored as x1000 integers: 1 byte should round down to 0ns
    costs = CostModel(copy_byte_ns_x1000=500)
    assert costs.copy_cost(1) == 0
    assert costs.copy_cost(2) == 1
    assert costs.copy_cost(8192) == 4096


def test_peekpoke_and_switch_costs():
    costs = CostModel(ptrace_word_ns=100, context_switch_ns=1000, cache_flush_ns=200)
    assert costs.peekpoke_cost(5) == 500
    assert costs.switch_cost(4) == 4800


def test_scaled_returns_modified_copy():
    base = CostModel()
    tweaked = base.scaled(context_switch_ns=9999)
    assert tweaked.context_switch_ns == 9999
    assert base.context_switch_ns != 9999
    assert tweaked.syscall_trap_ns == base.syscall_trap_ns


def test_net_transfer_cost():
    costs = CostModel(net_bytes_per_us=10)
    assert costs.net_transfer_cost(10) == NS_PER_US
    assert costs.net_transfer_cost(0) == 0
