"""CowMap compaction and tombstone edge cases.

The basics (set/get/freeze/fork/restore) live in
``tests/kernel/test_snapshot.py``; this file stresses the corners the
fuzzing executor leans on — deletions interacting with compaction, deep
freeze chains, and the ``diff_keys`` contract that makes the
O(size-of-diff) containment audit sound.
"""

import pytest

from repro.kernel.cow import COMPACT_LAYERS, CowMap


# --------------------------------------------------------------------- #
# compaction x deletion
# --------------------------------------------------------------------- #


def test_compact_after_delete_drops_the_key_for_good():
    """A tombstone must survive compaction as *absence*, not resurrect."""
    m = CowMap()
    m["keep"] = 1
    m["doomed"] = 2
    m.freeze()
    del m["doomed"]  # tombstone shadowing a frozen layer
    # freeze enough times to force at least one compaction sweep
    for i in range(2 * COMPACT_LAYERS):
        m[f"filler{i}"] = i
        m.freeze()
    assert m.layer_count < COMPACT_LAYERS  # depth stayed bounded
    assert "doomed" not in m
    assert m.get("doomed", "gone") == "gone"
    assert m["keep"] == 1
    # the materialized layer must not carry the tombstone as a value
    assert "doomed" not in dict(m.items())


def test_compaction_keeps_newest_shadow_not_oldest():
    m = CowMap()
    m["k"] = "oldest"
    m.freeze()
    last = 2 * COMPACT_LAYERS - 1
    for i in range(2 * COMPACT_LAYERS):
        m["k"] = f"gen{i}"
        m.freeze()
    assert m.layer_count < COMPACT_LAYERS
    assert m["k"] == f"gen{last}"


def test_delete_with_no_frozen_layers_is_a_real_delete():
    m = CowMap()
    m["a"] = 1
    del m["a"]
    # nothing frozen below: no tombstone bookkeeping should remain
    assert m.diff_keys() == set()
    with pytest.raises(KeyError):
        del m["a"]


def test_rewrite_after_tombstone_revives_the_key():
    m = CowMap()
    m["a"] = 1
    fork = CowMap.from_layers(m.freeze())
    del fork["a"]
    fork["a"] = 2
    assert fork["a"] == 2
    assert fork.in_top("a")
    assert m["a"] == 1


# --------------------------------------------------------------------- #
# freeze during a deep fork chain
# --------------------------------------------------------------------- #


def test_freeze_during_deep_chain_isolates_every_generation():
    """Fork-of-fork-of-fork…, each freezing mid-chain: no bleed-through."""
    generations = [CowMap()]
    generations[0]["base"] = 0
    for depth in range(1, COMPACT_LAYERS + 4):
        parent = generations[-1]
        child = CowMap.from_layers(parent.freeze())
        child[f"gen{depth}"] = depth
        child["base"] = depth  # shadow the inherited key
        generations.append(child)
    # every generation still answers with its own view
    for depth, gen in enumerate(generations):
        assert gen["base"] == depth
        # keys born after this generation are invisible to it
        assert f"gen{depth + 1}" not in gen
    # the deepest map sees the whole lineage
    deepest = generations[-1]
    for depth in range(1, len(generations)):
        assert deepest[f"gen{depth}"] == depth


def test_freeze_empty_top_is_a_noop_stack():
    m = CowMap()
    m["a"] = 1
    first = m.freeze()
    second = m.freeze()  # nothing written in between
    assert first == second
    assert m.layer_count == len(second)


# --------------------------------------------------------------------- #
# diff_keys: the O(size-of-diff) audit contract
# --------------------------------------------------------------------- #


def test_diff_keys_tracks_writes_and_deletes_since_freeze():
    m = CowMap()
    m["a"] = 1
    m["b"] = 2
    m.freeze()
    assert m.diff_keys() == set()  # clean fork: empty diff
    m["a"] = 10
    m["c"] = 3
    del m["b"]
    assert m.diff_keys() == {"a", "b", "c"}  # deletions are differences


def test_diff_keys_resets_on_restore():
    m = CowMap()
    m["a"] = 1
    layers = m.freeze()
    m["a"] = 2
    assert m.diff_keys() == {"a"}
    m.restore(layers)
    assert m.diff_keys() == set()
    assert m["a"] == 1


def test_diff_keys_on_fork_sees_only_the_forks_writes():
    parent = CowMap()
    parent["shared"] = 1
    fork = CowMap.from_layers(parent.freeze())
    parent["parent-only"] = 2
    fork["fork-only"] = 3
    assert fork.diff_keys() == {"fork-only"}
    assert parent.diff_keys() == {"parent-only"}
