"""Inode metadata and the Unix permission check."""

import stat as stat_mod

from repro.kernel.inode import (
    FileType,
    Inode,
    access_allowed,
    stat_of,
)


def make_inode(ftype=FileType.FILE, mode=0o644, uid=1000, gid=1000, **kw):
    return Inode(ino=5, ftype=ftype, mode=mode, uid=uid, gid=gid, **kw)


def test_file_size_tracks_data():
    node = make_inode()
    node.data.extend(b"12345")
    assert node.size == 5


def test_symlink_size_is_target_length():
    node = make_inode(ftype=FileType.SYMLINK)
    node.symlink_target = "/a/b"
    assert node.size == 4


def test_dir_size_is_entry_count():
    node = make_inode(ftype=FileType.DIR)
    node.entries["x"] = 7
    node.entries["y"] = 8
    assert node.size == 2


def test_type_predicates():
    assert make_inode(FileType.FILE).is_file
    assert make_inode(FileType.DIR).is_dir
    assert make_inode(FileType.SYMLINK).is_symlink


def test_st_mode_combines_type_and_permissions():
    node = make_inode(FileType.DIR, mode=0o750)
    assert stat_mod.S_ISDIR(node.st_mode())
    assert node.st_mode() & 0o777 == 0o750


def test_stat_of_snapshot():
    node = make_inode(mode=0o600, uid=7, gid=8)
    node.data.extend(b"xyz")
    st = stat_of(node)
    assert st.st_size == 3
    assert st.st_uid == 7
    assert st.st_gid == 8
    assert st.is_file and not st.is_dir


def test_stat_snapshot_is_frozen():
    node = make_inode()
    st = stat_of(node)
    node.data.extend(b"more")
    assert st.st_size == 0  # snapshot, not a live view


# -- access_allowed ------------------------------------------------------ #


def test_owner_uses_owner_bits():
    node = make_inode(mode=0o700, uid=10, gid=20)
    assert access_allowed(node, 10, 99, 7)
    assert not access_allowed(node, 11, 99, 4)


def test_group_uses_group_bits():
    node = make_inode(mode=0o070, uid=10, gid=20)
    assert access_allowed(node, 99, 20, 7)
    assert not access_allowed(node, 99, 21, 4)


def test_other_uses_other_bits():
    node = make_inode(mode=0o004, uid=10, gid=20)
    assert access_allowed(node, 99, 99, 4)
    assert not access_allowed(node, 99, 99, 2)


def test_owner_bits_shadow_other_bits():
    # the owner is checked against owner bits even if other bits are wider
    node = make_inode(mode=0o007, uid=10, gid=20)
    assert not access_allowed(node, 10, 20, 4)


def test_root_bypasses_rw():
    node = make_inode(mode=0o000, uid=10, gid=20)
    assert access_allowed(node, 0, 0, 6)


def test_root_execute_needs_any_x_bit():
    node = make_inode(mode=0o600, uid=10, gid=20)
    assert not access_allowed(node, 0, 0, 1)
    node.mode = 0o610
    assert access_allowed(node, 0, 0, 1)


def test_want_mask_requires_all_bits():
    node = make_inode(mode=0o400, uid=10, gid=20)
    assert access_allowed(node, 10, 20, 4)
    assert not access_allowed(node, 10, 20, 6)  # wants rw, has r only
