"""Process address spaces: allocation, peek/poke, fault detection."""

import pytest

from repro.kernel.errno import Errno, KernelError
from repro.kernel.memory import WORD_SIZE, AddressSpace, words_for


@pytest.fixture
def mem():
    return AddressSpace()


def test_alloc_returns_distinct_addresses(mem):
    a = mem.alloc(64)
    b = mem.alloc(64)
    assert a != b
    assert b > a


def test_alloc_rejects_nonpositive(mem):
    with pytest.raises(KernelError) as info:
        mem.alloc(0)
    assert info.value.errno is Errno.EINVAL


def test_read_write_roundtrip(mem):
    addr = mem.alloc(16)
    mem.write(addr, b"hello")
    assert mem.read(addr, 5) == b"hello"


def test_fresh_memory_is_zeroed(mem):
    addr = mem.alloc(8)
    assert mem.read(addr, 8) == b"\x00" * 8


def test_partial_overwrite(mem):
    addr = mem.alloc(8)
    mem.write(addr, b"AAAAAAAA")
    mem.write(addr + 2, b"bb")
    assert mem.read(addr, 8) == b"AAbbAAAA"


def test_out_of_bounds_read_faults(mem):
    addr = mem.alloc(8)
    with pytest.raises(KernelError) as info:
        mem.read(addr, 9)
    assert info.value.errno is Errno.EFAULT


def test_unmapped_address_faults(mem):
    with pytest.raises(KernelError) as info:
        mem.read(0xDEAD, 1)
    assert info.value.errno is Errno.EFAULT


def test_write_overflow_faults(mem):
    addr = mem.alloc(4)
    with pytest.raises(KernelError):
        mem.write(addr, b"12345")


def test_zero_length_ops(mem):
    addr = mem.alloc(4)
    assert mem.read(addr, 0) == b""
    mem.write(addr, b"")  # no-op, no fault


def test_peek_poke_word_roundtrip(mem):
    addr = mem.alloc(WORD_SIZE)
    mem.poke_word(addr, 0x0123456789ABCDEF)
    assert mem.peek_word(addr) == 0x0123456789ABCDEF


def test_poke_word_truncates_to_64_bits(mem):
    addr = mem.alloc(WORD_SIZE)
    mem.poke_word(addr, 2**64 + 5)
    assert mem.peek_word(addr) == 5


def test_word_is_little_endian(mem):
    addr = mem.alloc(WORD_SIZE)
    mem.poke_word(addr, 1)
    assert mem.read(addr, 1) == b"\x01"


def test_alloc_bytes_initializes(mem):
    addr = mem.alloc_bytes(b"payload")
    assert mem.read(addr, 7) == b"payload"


def test_alloc_bytes_empty_allocates_one_byte(mem):
    addr = mem.alloc_bytes(b"")
    assert mem.read(addr, 1) == b"\x00"


def test_cstring_roundtrip(mem):
    addr = mem.alloc(32)
    mem.write_cstring(addr, "path/to/file")
    assert mem.read_cstring(addr) == "path/to/file"


def test_cstring_unterminated_raises(mem):
    addr = mem.alloc(4)
    mem.write(addr, b"abcd")  # no NUL inside the region
    with pytest.raises(KernelError):
        mem.read_cstring(addr)


def test_total_allocated(mem):
    mem.alloc(10)
    mem.alloc(20)
    assert mem.total_allocated() == 30


def test_clone_is_independent(mem):
    addr = mem.alloc(8)
    mem.write(addr, b"original")
    twin = mem.clone()
    twin.write(addr, b"mutated!")
    assert mem.read(addr, 8) == b"original"
    assert twin.read(addr, 8) == b"mutated!"


def test_words_for():
    assert words_for(0) == 0
    assert words_for(1) == 1
    assert words_for(8) == 1
    assert words_for(9) == 2
    assert words_for(8192) == 1024
