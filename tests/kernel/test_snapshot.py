"""Unit tests for the copy-on-write world-snapshot machinery.

Covers the substrate (:class:`CowMap`), the per-store snapshot protocol,
and the machine-level composition: ``snapshot`` / ``fork`` / ``restore``,
quiescence enforcement, epoch-stamped descriptor tables, and open-but-
unlinked file semantics across the CoW store.
"""

from __future__ import annotations

import pytest

from repro.kernel import (
    AddressSpace,
    Clock,
    CowMap,
    Errno,
    FDTable,
    KernelError,
    LocalFS,
    Machine,
    OpenFile,
    OpenFlags,
    Pipe,
    Snapshotable,
    UserDB,
    VFS,
    WorldSnapshot,
)
from repro.kernel.cow import COMPACT_LAYERS

WC = OpenFlags.O_WRONLY | OpenFlags.O_CREAT | OpenFlags.O_TRUNC


# --------------------------------------------------------------------- #
# CowMap substrate
# --------------------------------------------------------------------- #


class TestCowMap:
    def test_set_get_delete(self):
        m = CowMap()
        m["a"] = 1
        assert m["a"] == 1
        assert "a" in m
        del m["a"]
        assert "a" not in m
        with pytest.raises(KeyError):
            m["a"]

    def test_none_is_a_legal_value(self):
        m = CowMap()
        m["k"] = None
        assert "k" in m
        assert m.get("k", "default") is None

    def test_freeze_shares_then_shadows(self):
        m = CowMap()
        m["a"] = 1
        m["b"] = 2
        layers = m.freeze()
        fork = CowMap.from_layers(layers)
        assert fork["a"] == 1 and fork["b"] == 2
        fork["a"] = 99
        assert m["a"] == 1  # parent unaffected
        assert fork["a"] == 99

    def test_tombstone_shadows_frozen_key(self):
        m = CowMap()
        m["a"] = 1
        fork = CowMap.from_layers(m.freeze())
        del fork["a"]
        assert "a" not in fork
        assert m["a"] == 1
        assert list(fork.items()) == []

    def test_restore_rewinds(self):
        m = CowMap()
        m["a"] = 1
        layers = m.freeze()
        m["a"] = 2
        m["b"] = 3
        m.restore(layers)
        assert m["a"] == 1
        assert "b" not in m

    def test_in_top_tracks_privacy(self):
        m = CowMap()
        m["a"] = 1
        assert m.in_top("a")
        m.freeze()
        assert not m.in_top("a")
        m["a"] = 2
        assert m.in_top("a")

    def test_iteration_shadows_correctly(self):
        m = CowMap()
        m["a"] = 1
        m["b"] = 2
        m.freeze()
        m["a"] = 10
        del m["b"]
        m["c"] = 3
        assert dict(m.items()) == {"a": 10, "c": 3}
        assert len(m) == 2
        assert sorted(m) == ["a", "c"]
        assert sorted(m.values()) == [3, 10]

    def test_compaction_bounds_layer_depth(self):
        m = CowMap()
        for i in range(COMPACT_LAYERS + 3):
            m[f"k{i}"] = i
            m.freeze()
        assert m.layer_count <= COMPACT_LAYERS
        assert len(m) == COMPACT_LAYERS + 3
        assert m["k0"] == 0

    def test_compaction_respects_tombstones(self):
        m = CowMap()
        m["gone"] = 1
        m.freeze()
        del m["gone"]
        for i in range(COMPACT_LAYERS + 1):
            m[f"k{i}"] = i
            m.freeze()
        assert "gone" not in m


# --------------------------------------------------------------------- #
# protocol conformance
# --------------------------------------------------------------------- #


def test_snapshotable_conformance():
    machine = Machine()
    for obj in (
        machine,
        machine.clock,
        machine.users,
        machine.vfs,
        machine.fs,
        Clock(),
        LocalFS(),
        UserDB(),
        VFS(LocalFS()),
        FDTable(),
        AddressSpace(),
        Pipe(),
    ):
        assert isinstance(obj, Snapshotable), type(obj).__name__


# --------------------------------------------------------------------- #
# per-store roundtrips
# --------------------------------------------------------------------- #


def test_fdtable_roundtrip():
    table = FDTable()
    of = OpenFile(inode=None, flags=OpenFlags.O_RDONLY, path="/f")
    fd = table.install(of)
    of.offset = 7
    state = table.snapshot_state()
    table.close(fd)
    of.offset = 99
    table.restore_state(state)
    assert table.get(fd) is of
    assert of.offset == 7
    assert of.refcount == 1


def test_fdtable_refuses_pipe_ends():
    table = FDTable()
    pipe = Pipe()
    pipe.add_end("r")
    table.install(OpenFile(inode=None, flags=OpenFlags.O_RDONLY, path="pipe:[r]", pipe=pipe, pipe_end="r"))
    with pytest.raises(KernelError) as exc:
        table.snapshot_state()
    assert exc.value.errno is Errno.EBUSY


def test_pipe_roundtrip_and_busy():
    pipe = Pipe(capacity=16)
    pipe.add_end("r")
    pipe.add_end("w")
    pipe.write(b"abc")
    state = pipe.snapshot_state()
    pipe.read(3)
    pipe.drop_end("w")
    pipe.restore_state(state)
    assert bytes(pipe.buffer) == b"abc"
    assert pipe.readers == 1 and pipe.writers == 1
    pipe.park(42, "read")
    with pytest.raises(KernelError) as exc:
        pipe.snapshot_state()
    assert exc.value.errno is Errno.EBUSY


def test_address_space_roundtrip():
    mem = AddressSpace()
    addr = mem.alloc_bytes(b"hello")
    state = mem.snapshot_state()
    mem.write(addr, b"HELLO")
    mem.alloc(64)
    mem.restore_state(state)
    assert mem.read(addr, 5) == b"hello"
    with pytest.raises(KernelError):
        mem.read(addr + 0x10000, 1)  # post-snapshot region is gone


# --------------------------------------------------------------------- #
# LocalFS copy-on-write semantics
# --------------------------------------------------------------------- #


def _world():
    machine = Machine()
    cred = machine.add_user("alice")
    task = machine.host_task(cred)
    return machine, task


def test_fs_mutation_after_freeze_clones_one_shard(machine):
    root = machine.host_task(machine.users.credentials_for("root"))
    machine.write_file(root, "/a", b"aaa")
    machine.write_file(root, "/b", b"bbb")
    snap = machine.snapshot()
    machine.write_file(root, "/a", b"AAA")
    fs = machine.fs
    ino_a = fs.current(machine.vfs.resolve("/a").require()).ino
    ino_b = fs.current(machine.vfs.resolve("/b").require()).ino
    assert fs._inodes.in_top(ino_a)  # the touched shard was cloned up
    assert not fs._inodes.in_top(ino_b)  # the untouched one stayed frozen
    child = machine.fork(snap)
    ctask = child.host_task(child.users.credentials_for("root"))
    assert child.read_file(ctask, "/a") == b"aaa"
    assert child.read_file(ctask, "/b") == b"bbb"
    assert machine.read_file(root, "/a") == b"AAA"


def test_open_unlinked_file_survives_snapshot():
    machine, task = _world()
    machine.write_file(task, "/home/alice/f", b"payload")
    fd = machine.kcall_x(task, "open", "/home/alice/f", OpenFlags.O_RDWR)
    machine.kcall_x(task, "unlink", "/home/alice/f")
    # POSIX: the description stays readable and writable after unlink
    assert machine.kcall_x(task, "read_bytes", fd, 7) == b"payload"
    machine.kcall_x(task, "write_bytes", fd, b"-more")
    machine.kcall_x(task, "lseek", fd, 0, 0)
    assert machine.kcall_x(task, "read_bytes", fd, 64) == b"payload-more"
    machine.kcall_x(task, "close", fd)


def test_metadata_touch_does_not_copy_file_bytes():
    machine, task = _world()
    machine.write_file(task, "/home/alice/big", b"x" * 4096)
    fs = machine.fs
    ino = fs.current(machine.vfs.resolve("/home/alice/big").require()).ino
    machine.snapshot()
    # read → atime touch clones the inode shard but must share the bytes
    fd = machine.kcall_x(task, "open", "/home/alice/big", OpenFlags.O_RDONLY)
    machine.kcall_x(task, "read_bytes", fd, 10)
    machine.kcall_x(task, "close", fd)
    node = fs._inodes[ino]
    assert fs._inodes.in_top(ino)
    assert node.owns_data is False  # bytes still shared with the snapshot


# --------------------------------------------------------------------- #
# machine-level snapshot / fork / restore
# --------------------------------------------------------------------- #


def test_snapshot_requires_quiescence(machine):
    cred = machine.add_user("alice")

    def body(proc, args):
        yield proc.sys.getpid()
        return 0

    machine.spawn(body, cred=cred, comm="live")
    with pytest.raises(KernelError) as exc:
        machine.snapshot()
    assert exc.value.errno is Errno.EBUSY
    machine.run()  # drive it to completion; zombies are inert
    snap = machine.snapshot()
    assert isinstance(snap, WorldSnapshot)


def test_fork_isolated_both_directions():
    machine, task = _world()
    machine.write_file(task, "/home/alice/f", b"base")
    child = machine.fork()
    ctask = child.host_task(child.users.credentials_for("alice"))
    child.write_file(ctask, "/home/alice/f", b"child")
    machine.write_file(task, "/home/alice/f", b"parent")
    assert machine.read_file(task, "/home/alice/f") == b"parent"
    assert child.read_file(ctask, "/home/alice/f") == b"child"
    # identity tables diverge independently too
    child.add_user("bob")
    assert child.users.exists("bob")
    assert not machine.users.exists("bob")


def test_fork_preserves_users_clock_and_programs():
    machine, task = _world()
    machine.register_program("prog", lambda proc, args: iter(()))
    t0 = machine.clock.now_ns
    child = machine.fork()
    assert child.users.exists("alice")
    assert child.clock.now_ns == t0
    assert "prog" in child.programs
    assert child.hostname == machine.hostname


def test_stale_fd_fails_ebadf_after_restore():
    machine, task = _world()
    machine.write_file(task, "/home/alice/f", b"data")
    snap = machine.snapshot()
    fd = machine.kcall_x(task, "open", "/home/alice/f", OpenFlags.O_RDONLY)
    machine.restore(snap)
    with pytest.raises(KernelError) as exc:
        machine.kcall_x(task, "read_bytes", fd, 4)
    assert exc.value.errno is Errno.EBADF
    # a task hosted on the restored world works fine
    task2 = machine.host_task(machine.users.credentials_for("alice"))
    fd2 = machine.kcall_x(task2, "open", "/home/alice/f", OpenFlags.O_RDONLY)
    assert machine.kcall_x(task2, "read_bytes", fd2, 4) == b"data"


def test_parent_fd_fails_ebadf_on_fork():
    machine, task = _world()
    machine.write_file(task, "/home/alice/f", b"data")
    fd = machine.kcall_x(task, "open", "/home/alice/f", OpenFlags.O_RDONLY)
    machine.kcall_x(task, "close", fd)
    child = machine.fork()
    fd2 = machine.kcall_x(task, "open", "/home/alice/f", OpenFlags.O_RDONLY)
    with pytest.raises(KernelError) as exc:
        child.kcall_x(task, "read_bytes", fd2, 4)  # parent-world table
    assert exc.value.errno is Errno.EBADF
    # the parent still honours its own tables
    assert machine.kcall_x(task, "read_bytes", fd2, 4) == b"data"


def test_epoch_increments_on_restore():
    machine, _task = _world()
    snap = machine.snapshot()
    assert machine.epoch == 0
    machine.restore(snap)
    assert machine.epoch == 1
    machine.restore(snap)
    assert machine.epoch == 2
    child = machine.fork(snap)
    assert child.epoch == snap.epoch + 1


def test_restore_then_rerun_processes():
    """A restored world can spawn and run fresh processes normally."""
    machine, task = _world()
    snap = machine.snapshot()
    outcomes = []

    def body(proc, args):
        fd = yield proc.sys.open("/home/alice/out", int(WC), 0o644)
        addr = proc.alloc_bytes(b"ran")
        yield proc.sys.write(fd, addr, 3)
        yield proc.sys.close(fd)
        outcomes.append(True)
        return 0

    for _round in range(2):
        machine.restore(snap)
        task2 = machine.host_task(machine.users.credentials_for("alice"))
        machine.spawn(body, cred=machine.users.credentials_for("alice"), comm="w")
        machine.run()
        assert machine.read_file(task2, "/home/alice/out") == b"ran"
    assert outcomes == [True, True]


def test_fork_telemetry_detached():
    from repro.core.telemetry import Telemetry

    machine = Machine(telemetry=Telemetry())
    machine.telemetry.clock = machine.clock
    span = machine.telemetry.start_span("parent-op")
    child = machine.fork()
    assert child.telemetry is not machine.telemetry
    child_span = child.telemetry.start_span("child-op")
    # fresh root trace: no lineage back into the parent's open span
    assert child_span.trace_id != span.trace_id
    assert child_span.parent_id == ""
    child.telemetry.end_span(child_span)
    machine.telemetry.end_span(span)
    assert machine.telemetry.spans_named("child-op") == []
