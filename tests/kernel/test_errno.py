"""Errno values and KernelError behaviour."""

import pytest

from repro.kernel.errno import Errno, KernelError, err


def test_values_match_linux():
    assert Errno.EPERM == 1
    assert Errno.ENOENT == 2
    assert Errno.EACCES == 13
    assert Errno.EEXIST == 17
    assert Errno.ENOSYS == 38


def test_kernel_error_carries_errno():
    exc = KernelError(Errno.EACCES, "no entry")
    assert exc.errno is Errno.EACCES
    assert "EACCES" in str(exc)
    assert "no entry" in str(exc)


def test_err_helper_builds_kernel_error():
    exc = err(Errno.ENOENT)
    assert isinstance(exc, KernelError)
    assert exc.errno is Errno.ENOENT


def test_kernel_error_accepts_int():
    exc = KernelError(2)
    assert exc.errno is Errno.ENOENT


def test_kernel_error_is_raisable():
    with pytest.raises(KernelError) as info:
        raise err(Errno.EBADF, "fd 7")
    assert info.value.errno is Errno.EBADF


def test_message_optional():
    assert str(KernelError(Errno.EIO)) == "EIO"


def test_negative_return_convention_roundtrip():
    # the dispatcher encodes errors as -errno; decoding must invert it
    for errno in (Errno.EPERM, Errno.ENOENT, Errno.ELOOP):
        assert Errno(-(-int(errno))) is errno
