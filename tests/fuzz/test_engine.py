"""The engine: determinism, guidance value, shrinking, reproducers.

This file carries the ISSUE's acceptance bars directly:

* same seed -> byte-identical report (corpus + coverage map included),
* guided coverage >= 3x the unguided baseline at the same budget,
* a planted oracle failure is shrunk to a minimal reproducer that
  replays from (seed, snapshot_id) to the same verdict.
"""

import json

import pytest

from repro.fuzz import (
    FuzzConfig,
    FuzzEngine,
    Scenario,
    SyscallExecutor,
    replay_reproducer,
)
from repro.fuzz.engine import _violation_class
from repro.fuzz.executor import SHARED_DIR


def _report_bytes(config: FuzzConfig) -> str:
    report = FuzzEngine(config).run()
    return json.dumps(report, sort_keys=True, separators=(",", ":"))


# --------------------------------------------------------------------- #
# determinism
# --------------------------------------------------------------------- #


def test_same_seed_yields_byte_identical_reports():
    config = FuzzConfig(seed=42, budget=40)
    assert _report_bytes(config) == _report_bytes(config)


def test_different_seeds_explore_differently():
    a = _report_bytes(FuzzConfig(seed=1, budget=40))
    b = _report_bytes(FuzzConfig(seed=2, budget=40))
    assert a != b


def test_both_surfaces_round_robin_deterministically():
    config = FuzzConfig(seed=9, budget=12, surfaces=("syscall", "chirp"))
    first = _report_bytes(config)
    assert first == _report_bytes(config)
    report = json.loads(first)
    assert report["executions"] == 12
    assert set(report["snapshot_ids"]) == {"syscall", "chirp"}
    prefixes = {edge.split("|")[0] for edge in report["coverage"]}
    assert "syscall" in prefixes and "chirp" in prefixes


# --------------------------------------------------------------------- #
# the guidance claim
# --------------------------------------------------------------------- #


def test_guided_reaches_at_least_3x_the_unguided_coverage():
    budget = 500
    guided = FuzzEngine(FuzzConfig(seed=11, budget=budget, guided=True)).run()
    unguided = FuzzEngine(
        FuzzConfig(seed=11, budget=budget, guided=False)
    ).run()
    assert guided["executions"] == unguided["executions"] == budget
    ratio = guided["edge_count"] / unguided["edge_count"]
    assert ratio >= 3.0, (
        f"guided {guided['edge_count']} vs unguided {unguided['edge_count']} "
        f"edges: only {ratio:.2f}x"
    )
    # retention is the mechanism: the control arm must keep no corpus
    assert guided["corpus"]
    assert unguided["corpus"] == []


def test_coverage_map_records_first_reaching_exec():
    report = FuzzEngine(FuzzConfig(seed=3, budget=30)).run()
    indices = set(report["coverage"].values())
    assert 0 in indices  # the seed scenario itself reached something first
    assert all(0 <= i < report["executions"] for i in indices)
    assert report["edge_count"] == len(report["coverage"])


def test_corpus_entries_carry_their_evidence():
    report = FuzzEngine(FuzzConfig(seed=4, budget=60)).run()
    assert report["violations"] == 0  # the boundary holds
    for entry in report["corpus"]:
        assert entry["new_edges"], "retention without new coverage"
        assert entry["key"] == Scenario.from_json(entry["scenario"]).key()


# --------------------------------------------------------------------- #
# planted violation -> shrink -> reproducer -> replay
# --------------------------------------------------------------------- #


class LeakyExecutor(SyscallExecutor):
    """Oracle misconfiguration on purpose: the shared dir counts as
    protected, so a legitimately granted write there reads as a leak."""

    writable_zone = ("/tmp",)


@pytest.fixture(scope="module")
def filed():
    engine = FuzzEngine(
        FuzzConfig(seed=0, budget=1),
        executors={"syscall": LeakyExecutor(world_users=2)},
    )
    scenario = Scenario(
        surface="syscall",
        identity="Fuzzer",
        ops=[
            ["open_write", f"{SHARED_DIR}/drop.txt"],
            ["whoami"],
            ["stat", "/"],
        ],
        grants=[["Fuzzer", "rwla"]],
    )
    engine._execute_one("syscall", scenario)
    return engine


def test_planted_violation_is_filed_and_shrunk(filed):
    assert len(filed.reproducers) == 1
    reproducer = filed.reproducers[0]
    assert _violation_class(reproducer["verdict"]) == "violation:containment"
    minimal = Scenario.from_json(reproducer["scenario"])
    # the benign tail ops were shrunk away; the grant is load-bearing
    # (without it the write is denied and nothing leaks) so it survives
    assert minimal.ops == [["open_write", f"{SHARED_DIR}/drop.txt"]]
    assert minimal.grants == [["Fuzzer", "rwla"]]
    assert reproducer["snapshot_id"] == filed.executors["syscall"].snapshot_id


def test_reproducer_replays_to_the_same_verdict(filed):
    reproducer = filed.reproducers[0]
    replay = replay_reproducer(
        reproducer, executor=LeakyExecutor(world_users=2)
    )
    assert replay["snapshot_matches"]
    assert replay["verdict_matches"]
    assert replay["transcript_matches"]


def test_replay_against_the_true_oracle_exonerates(filed):
    # rebuilt with the *correct* writable zone, the same scenario is clean
    # and the snapshot pin flags the world mismatch
    replay = replay_reproducer(filed.reproducers[0])
    assert not replay["snapshot_matches"]
    assert replay["verdict"] == "ok"
    assert not replay["verdict_matches"]


def test_shrink_respects_its_trial_budget():
    engine = FuzzEngine(
        FuzzConfig(seed=0, budget=1, shrink_budget=2),
        executors={"syscall": LeakyExecutor(world_users=2)},
    )
    scenario = Scenario(
        surface="syscall",
        identity="Fuzzer",
        ops=[["open_write", f"{SHARED_DIR}/drop.txt"]] + [["whoami"]] * 6,
        grants=[["Fuzzer", "rwla"]],
    )
    engine._execute_one("syscall", scenario)
    minimal = Scenario.from_json(engine.reproducers[0]["scenario"])
    # only two trials were allowed: most of the tail must still be there
    assert len(minimal.ops) >= 5
