"""Scenario model: canonical JSON, stable keys, deterministic mutation."""

import json
import random

from repro.fuzz.scenario import (
    Scenario,
    mutate_scenario,
    random_op,
    seed_scenario,
    splice_scenarios,
)


def test_roundtrip_is_identity():
    scenario = seed_scenario("chirp")
    scenario.grants.append(["*", "rl"])
    scenario.fault = {"seed": 3, "rates": {"drop": 0.3}, "restart_at_ops": [2]}
    again = Scenario.from_json(json.loads(json.dumps(scenario.to_json())))
    assert again.to_json() == scenario.to_json()
    assert again.key() == scenario.key()


def test_cache_flag_round_trips_and_changes_the_key():
    scenario = seed_scenario("chirp")
    scenario.cache = True
    again = Scenario.from_json(json.loads(json.dumps(scenario.to_json())))
    assert again.cache is True
    assert again.key() == scenario.key()
    # the flag is world-shaping state: it must be content-addressed too
    plain = seed_scenario("chirp")
    assert plain.key() != scenario.key()


def test_key_is_content_addressed():
    a = seed_scenario("syscall")
    b = seed_scenario("syscall")
    assert a.key() == b.key()
    mutate_scenario(b, random.Random(1))
    if b.to_json() != a.to_json():
        assert b.key() != a.key()


def test_clone_is_deep():
    a = seed_scenario("syscall")
    b = a.clone()
    b.ops[0][1] = "elsewhere"
    b.grants.append(["*", "r"])
    assert a.ops[0][1] != "elsewhere"
    assert a.grants == []


def test_mutation_is_deterministic_under_a_seeded_rng():
    runs = []
    for _ in range(2):
        rng = random.Random(99)
        scenario = seed_scenario("syscall")
        for _ in range(50):
            mutate_scenario(scenario, rng)
        runs.append(scenario.to_json())
    assert runs[0] == runs[1]


def test_mutation_respects_max_ops():
    rng = random.Random(5)
    scenario = seed_scenario("syscall")
    for _ in range(300):
        mutate_scenario(scenario, rng, max_ops=8)
        assert 1 <= len(scenario.ops) <= 8


def test_mutation_never_leaves_an_empty_script():
    rng = random.Random(17)
    scenario = seed_scenario("chirp")
    for _ in range(300):
        mutate_scenario(scenario, rng)
        assert scenario.ops


def test_random_op_matches_the_menu_arity():
    from repro.fuzz.scenario import CHIRP_OP_MENU, SYSCALL_OP_MENU

    rng = random.Random(0)
    for surface, menu in (("syscall", SYSCALL_OP_MENU), ("chirp", CHIRP_OP_MENU)):
        arity = dict((name, len(kinds)) for name, kinds in menu)
        for _ in range(200):
            op = random_op(surface, rng)
            assert len(op) - 1 == arity[op[0]]


def test_splice_combines_parents_within_bounds():
    rng = random.Random(2)
    a = seed_scenario("syscall")
    b = seed_scenario("syscall")
    for _ in range(20):
        mutate_scenario(a, rng)
        mutate_scenario(b, rng)
    for _ in range(50):
        child = splice_scenarios(a, b, rng, max_ops=10)
        assert 1 <= len(child.ops) <= 10
        assert child.surface == a.surface


def test_chirp_fault_mutations_keep_canonical_shape():
    rng = random.Random(7)
    scenario = seed_scenario("chirp")
    saw_blackout = False
    for _ in range(400):
        mutate_scenario(scenario, rng)
        if scenario.fault:
            assert set(scenario.fault) == {
                "seed", "rates", "restart_at_ops", "blackout_windows",
            }
            assert all(rate > 0 for rate in scenario.fault["rates"].values())
            restarts = scenario.fault["restart_at_ops"]
            assert restarts == sorted(restarts)
            windows = scenario.fault["blackout_windows"]
            assert windows == sorted(windows)
            assert all(start < end for start, end in windows)
            saw_blackout = saw_blackout or bool(windows)
    # the shard-death move is really in the menu: 400 edits hit it
    assert saw_blackout
