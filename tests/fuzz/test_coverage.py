"""Coverage extraction: telemetry counters/spans -> behavioral edges."""

from types import SimpleNamespace

from repro.fuzz.coverage import (
    _log_bucket,
    coverage_edges,
    merge_edges,
    stage_for_status,
)


def _telemetry(counters=None, spans=()):
    """Duck-typed stand-in: coverage_edges only reads counters + spans."""
    return SimpleNamespace(
        counters=dict(counters or {}),
        spans=[SimpleNamespace(name=n, status=s) for n, s in spans],
    )


def _outcome(surface, op, status):
    key = tuple(sorted({"surface": surface, "op": op, "status": status}.items()))
    return ("pipeline.outcomes", key)


def test_stage_recovery_from_status():
    assert stage_for_status("ok") == "handler"
    assert stage_for_status("EACCES") == "monitor"
    assert stage_for_status("EPERM") == "monitor"
    assert stage_for_status("EAGAIN") == "breaker"
    assert stage_for_status("ENOSYS") == "registry"
    # unknown errnos came out of the handler itself
    assert stage_for_status("ENOENT") == "handler"
    assert stage_for_status("EISDIR") == "handler"


def test_log_buckets():
    assert [_log_bucket(n) for n in (1, 2, 3, 4, 5, 8, 9, 16, 17)] == [
        1, 1, 2, 2, 3, 3, 4, 4, 5,
    ]


def test_outcome_counter_becomes_a_staged_bucketed_edge():
    telemetry = _telemetry({_outcome("syscall", "open", "ok"): 1})
    assert coverage_edges(telemetry) == {"syscall|handler|open|ok|x1"}


def test_denial_maps_to_the_monitor_stage():
    telemetry = _telemetry({_outcome("chirp", "unlink", "EACCES"): 3})
    assert coverage_edges(telemetry) == {"chirp|monitor|unlink|EACCES|x2"}


def test_repetition_changes_the_bucket_not_the_edge_count():
    once = coverage_edges(_telemetry({_outcome("syscall", "read", "ok"): 2}))
    lots = coverage_edges(_telemetry({_outcome("syscall", "read", "ok"): 40}))
    assert once == {"syscall|handler|read|ok|x1"}
    assert lots == {"syscall|handler|read|ok|x6"}
    assert once != lots


def test_fault_counters_become_fault_edges():
    telemetry = _telemetry(
        {
            ("fault.drop", ()): 5,
            ("fault.spike", ()): 1,
            ("some.other.counter", ()): 7,
        }
    )
    assert coverage_edges(telemetry) == {"fault|drop|x3", "fault|spike|x1"}


def test_zero_counts_yield_no_edges():
    telemetry = _telemetry({_outcome("syscall", "open", "ok"): 0})
    assert coverage_edges(telemetry) == set()


def test_span_sequence_yields_bigrams_and_trigrams():
    telemetry = _telemetry(
        spans=[
            ("syscall:open", "ok"),
            ("syscall:write", "ok"),
            ("syscall:unlink", "EACCES"),
        ]
    )
    edges = coverage_edges(telemetry)
    assert "seq|syscall:open:ok>syscall:write:ok" in edges
    assert "seq|syscall:write:ok>syscall:unlink:EACCES" in edges
    assert (
        "seq|syscall:open:ok>syscall:write:ok>syscall:unlink:EACCES" in edges
    )
    # a single span produces no sequence edges at all
    assert coverage_edges(_telemetry(spans=[("syscall:open", "ok")])) == set()


def test_order_matters_for_sequence_edges():
    forward = coverage_edges(
        _telemetry(spans=[("a:x", "ok"), ("b:y", "ok")])
    )
    reverse = coverage_edges(
        _telemetry(spans=[("b:y", "ok"), ("a:x", "ok")])
    )
    assert forward == {"seq|a:x:ok>b:y:ok"}
    assert reverse == {"seq|b:y:ok>a:x:ok"}
    assert forward.isdisjoint(reverse)


def test_merge_edges_reports_only_the_new():
    seen = {"a", "b"}
    fresh = merge_edges(seen, {"b", "c", "d"})
    assert fresh == {"c", "d"}
    assert seen == {"a", "b", "c", "d"}
    assert merge_edges(seen, {"a", "c"}) == set()
