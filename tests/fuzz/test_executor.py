"""Executors: warm forking, determinism, and the per-exec oracles."""

import pytest

from repro.fuzz import SyscallExecutor, ChirpExecutor, seed_scenario
from repro.fuzz.executor import SHARED_DIR
from repro.fuzz.scenario import Scenario


@pytest.fixture(scope="module")
def syscall_executor():
    executor = SyscallExecutor(world_users=4)
    executor.template_snapshot()
    return executor


@pytest.fixture(scope="module")
def chirp_executor():
    executor = ChirpExecutor()
    executor.template_snapshot()
    return executor


# --------------------------------------------------------------------- #
# syscall surface
# --------------------------------------------------------------------- #


def test_seed_scenario_runs_clean(syscall_executor):
    result = syscall_executor.execute(seed_scenario("syscall"))
    assert result.verdict == "ok"
    assert result.coverage
    # one transcript entry per op
    assert len(result.transcript) == 2
    # first op: reading alice's 0600 secret must be denied
    op, out = result.transcript[0]
    assert op == "open_read"
    assert isinstance(out, int) and out < 0
    # second op: writing inside the box home must succeed (10 bytes)
    assert result.transcript[1] == ["open_write", 10]


def test_execution_is_deterministic(syscall_executor):
    a = syscall_executor.execute(seed_scenario("syscall"))
    b = syscall_executor.execute(seed_scenario("syscall"))
    assert a.transcript == b.transcript
    assert a.transcript_sha() == b.transcript_sha()
    assert a.coverage == b.coverage
    assert a.touched == b.touched


def test_cold_build_reproduces_the_warm_fork(syscall_executor):
    warm = syscall_executor.execute(seed_scenario("syscall"))
    cold = syscall_executor.execute(seed_scenario("syscall"), warm=False)
    assert cold.transcript == warm.transcript
    assert cold.verdict == "ok"


def test_denied_ops_produce_monitor_edges(syscall_executor):
    result = syscall_executor.execute(seed_scenario("syscall"))
    assert any("|monitor|" in edge for edge in result.coverage)
    assert any(edge.startswith("seq|") for edge in result.coverage)


def test_invalid_identity_is_rejected_at_the_gate(syscall_executor):
    scenario = seed_scenario("syscall")
    scenario.identity = "two words"  # whitespace: fails validate_identity
    result = syscall_executor.execute(scenario)
    assert result.verdict == "ok"
    assert result.coverage == {"syscall|gate|identity|rejected"}
    assert result.transcript[0][0] == "identity-rejected"


def test_hostile_script_stays_contained(syscall_executor):
    scenario = Scenario(
        surface="syscall",
        identity="Fuzzer",
        ops=[
            ["open_write", "/home/alice/secret"],
            ["unlink", "/home/alice/keep/data"],
            ["chmod", "/etc/passwd"],
            ["rename", "/home/alice/public", "stolen.txt"],
            ["truncate", "../../../home/alice/secret"],
        ],
    )
    result = syscall_executor.execute(scenario)
    assert result.verdict == "ok"  # nothing leaked
    # every one of those must have been denied
    for op, out in result.transcript:
        assert isinstance(out, int) and out < 0, (op, out)


def test_granted_zone_write_succeeds_and_is_not_a_leak(syscall_executor):
    scenario = Scenario(
        surface="syscall",
        identity="Fuzzer",
        ops=[["open_write", f"{SHARED_DIR}/drop.txt"]],
        grants=[["Fuzzer", "rwla"]],
    )
    result = syscall_executor.execute(scenario)
    assert result.verdict == "ok"
    assert ["grant", "Fuzzer", "rwla"] in result.transcript
    assert ["open_write", 10] in result.transcript


def test_check_survivor_passes_on_a_clean_scenario(syscall_executor):
    scenario = seed_scenario("syscall")
    result = syscall_executor.execute(scenario)
    assert syscall_executor.check_survivor(scenario, result) == ""


def test_snapshot_id_is_stable_and_world_sensitive(syscall_executor):
    same = SyscallExecutor(world_users=4)
    assert same.snapshot_id == syscall_executor.snapshot_id
    bigger = SyscallExecutor(world_users=5)
    assert bigger.snapshot_id != syscall_executor.snapshot_id
    assert syscall_executor.snapshot_id.startswith("syscall:")


def test_containment_oracle_fires_when_the_zone_shrinks():
    class LeakyExecutor(SyscallExecutor):
        # the shared dir is no longer considered legitimately writable,
        # so a granted write there must trip the containment oracle
        writable_zone = ("/tmp",)

    executor = LeakyExecutor(world_users=2)
    scenario = Scenario(
        surface="syscall",
        identity="Fuzzer",
        ops=[["open_write", f"{SHARED_DIR}/drop.txt"]],
        grants=[["Fuzzer", "rwla"]],
    )
    result = executor.execute(scenario)
    assert result.verdict.startswith("violation:containment:")
    assert "modified" in result.verdict or "deleted" in result.verdict


# --------------------------------------------------------------------- #
# chirp surface
# --------------------------------------------------------------------- #


def test_chirp_seed_scenario_authenticates_and_runs(chirp_executor):
    result = chirp_executor.execute(seed_scenario("chirp"))
    assert result.verdict == "ok"
    assert result.transcript[0][0] == "authenticated"
    assert "/O=UnivNowhere/CN=Fred" in result.transcript[0][1]
    assert any("chirp|" in edge for edge in result.coverage)


def test_chirp_execution_is_deterministic(chirp_executor):
    a = chirp_executor.execute(seed_scenario("chirp"))
    b = chirp_executor.execute(seed_scenario("chirp"))
    assert a.transcript == b.transcript
    assert a.coverage == b.coverage


def test_chirp_read_only_dn_is_denied_writes(chirp_executor):
    scenario = Scenario(
        surface="chirp",
        identity="/O=NotreDame/CN=Heidi",  # rl only in the base ACL
        ops=[["put", "/evil.txt"], ["stat", "/"]],
    )
    result = chirp_executor.execute(scenario)
    assert result.verdict == "ok"
    put_out = dict((op, out) for op, out in result.transcript[1:])["put"]
    assert put_out == ["chirp-error", "EACCES"]


def test_chirp_fault_schedule_adds_fault_edges(chirp_executor):
    scenario = seed_scenario("chirp")
    scenario.fault = {
        "seed": 7,
        "rates": {"spike": 0.9},
        "restart_at_ops": [],
    }
    result = chirp_executor.execute(scenario)
    assert any(edge.startswith("fault|spike|") for edge in result.coverage)
    # the same schedule replays identically
    again = chirp_executor.execute(scenario)
    assert again.transcript == result.transcript
    assert again.coverage == result.coverage


def test_chirp_blackout_window_adds_fault_edges_and_replays(chirp_executor):
    # the scheduled shard-death fault: the whole endpoint refuses for a
    # window of the plan's op counter, and the run stays contained and
    # deterministic (exactly what makes a blackout reproducer an artifact)
    scenario = seed_scenario("chirp")
    scenario.fault = {
        "seed": 11,
        "rates": {},
        "restart_at_ops": [],
        "blackout_windows": [[2, 30]],
    }
    result = chirp_executor.execute(scenario)
    assert result.verdict == "ok"
    assert any(edge.startswith("fault|blackout|") for edge in result.coverage)
    again = chirp_executor.execute(scenario)
    assert again.transcript == result.transcript
    assert again.coverage == result.coverage


def test_chirp_survivor_check_passes_on_seed(chirp_executor):
    scenario = seed_scenario("chirp")
    result = chirp_executor.execute(scenario)
    assert chirp_executor.check_survivor(scenario, result) == ""
