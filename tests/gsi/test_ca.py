"""The toy certificate authority."""

import dataclasses

import pytest

from repro.gsi.ca import Certificate, CertificateAuthority, CertificateError

SUBJECT = "/O=UnivNowhere/CN=Fred"


@pytest.fixture
def ca():
    return CertificateAuthority("UnivNowhere CA")


def test_issue_and_verify(ca):
    cert = ca.issue(SUBJECT)
    assert cert.subject == SUBJECT
    assert cert.issuer == "UnivNowhere CA"
    assert ca.verify(cert)


def test_serials_are_unique(ca):
    a = ca.issue(SUBJECT)
    b = ca.issue(SUBJECT)
    assert a.serial != b.serial


def test_subject_must_be_a_dn(ca):
    with pytest.raises(CertificateError):
        ca.issue("not-a-dn")


def test_tampered_subject_fails(ca):
    cert = ca.issue(SUBJECT)
    forged = dataclasses.replace(cert, subject="/O=UnivNowhere/CN=Mallory")
    assert not ca.verify(forged)


def test_tampered_signature_fails(ca):
    cert = ca.issue(SUBJECT)
    forged = dataclasses.replace(cert, signature="0" * 64)
    assert not ca.verify(forged)


def test_foreign_ca_rejected(ca):
    other = CertificateAuthority("Other CA")
    cert = other.issue(SUBJECT)
    assert not ca.verify(cert)


def test_impersonating_ca_name_fails(ca):
    # an attacker who spins up a CA with the same *name* still lacks the
    # secret, so signatures disagree — names are not trust anchors, keys are
    evil = CertificateAuthority("UnivNowhere CA", _secret=b"attacker-guess")
    cert = evil.issue(SUBJECT)
    assert not ca.verify(cert)


def test_same_ca_name_same_secret_is_deterministic():
    # deterministic keying keeps simulations reproducible
    a = CertificateAuthority("X CA")
    b = CertificateAuthority("X CA")
    assert a.verify(b.issue("/O=X/CN=U"))


def test_require_valid(ca):
    cert = ca.issue(SUBJECT)
    assert ca.require_valid(cert) == SUBJECT
    forged = dataclasses.replace(cert, subject="/O=X/CN=E")
    with pytest.raises(CertificateError):
        ca.require_valid(forged)
