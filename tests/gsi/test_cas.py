"""Admission policies: wildcards and the community authorization service."""

from repro.gsi.cas import (
    AnyOfPolicy,
    CommunityAuthorizationService,
    OpenPolicy,
    WildcardPolicy,
)

FRED = "globus:/O=UnivNowhere/CN=Fred"
HEIDI = "globus:/O=NotreDame/CN=Heidi"


def test_open_policy_admits_everyone():
    assert OpenPolicy().admits(FRED)
    assert OpenPolicy().admits("anything")


def test_wildcard_policy():
    policy = WildcardPolicy(patterns=["globus:/O=UnivNowhere/*", "hostname:*.nd.edu"])
    assert policy.admits(FRED)
    assert not policy.admits(HEIDI)
    assert policy.admits("hostname:lab.nd.edu")


def test_empty_wildcard_policy_admits_nobody():
    assert not WildcardPolicy().admits(FRED)


def test_cas_membership():
    cas = CommunityAuthorizationService()
    cas.create_community("cms-experiment")
    cas.add_member("cms-experiment", FRED)
    cas.trust_community("cms-experiment")
    assert cas.admits(FRED)
    assert not cas.admits(HEIDI)


def test_cas_untrusted_community_not_admitted():
    cas = CommunityAuthorizationService()
    cas.create_community("friends")
    cas.add_member("friends", FRED)
    # community exists but the server doesn't trust it
    assert not cas.admits(FRED)


def test_cas_member_management_without_site_admin():
    cas = CommunityAuthorizationService()
    cas.create_community("c")
    cas.trust_community("c")
    cas.add_member("c", FRED)
    assert cas.admits(FRED)
    cas.remove_member("c", FRED)
    assert not cas.admits(FRED)


def test_cas_member_of():
    cas = CommunityAuthorizationService()
    for name in ("a", "b"):
        cas.create_community(name)
        cas.add_member(name, FRED)
    assert cas.member_of(FRED) == ["a", "b"]
    assert cas.member_of(HEIDI) == []


def test_cas_unknown_community_raises():
    cas = CommunityAuthorizationService()
    try:
        cas.add_member("ghost", FRED)
        raised = False
    except KeyError:
        raised = True
    assert raised


def test_any_of_composition():
    policy = AnyOfPolicy(
        policies=[
            WildcardPolicy(patterns=["globus:/O=UnivNowhere/*"]),
            WildcardPolicy(patterns=["globus:/O=NotreDame/*"]),
        ]
    )
    assert policy.admits(FRED)
    assert policy.admits(HEIDI)
    assert not policy.admits("globus:/O=Evil/CN=M")
    assert not AnyOfPolicy().admits(FRED)
