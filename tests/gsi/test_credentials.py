"""Proxy credentials and the server-side trust store."""

import dataclasses

import pytest

from repro.gsi.ca import CertificateAuthority, CertificateError
from repro.gsi.credentials import CredentialStore, UserCredentials, provision_user

SUBJECT = "/O=UnivNowhere/CN=Fred"


@pytest.fixture
def ca():
    return CertificateAuthority("UnivNowhere CA")


@pytest.fixture
def store(ca):
    s = CredentialStore()
    s.trust(ca)
    return s


@pytest.fixture
def fred(ca, store):
    return provision_user(ca, store, SUBJECT)


def test_proxy_verifies_to_subject(store, fred):
    proxy = fred.make_proxy()
    assert store.verify_proxy(proxy) == SUBJECT


def test_proxy_depth_must_be_positive(fred):
    with pytest.raises(CertificateError):
        fred.make_proxy(depth=0)


def test_delegated_proxy_still_names_end_entity(store, fred):
    proxy = fred.make_proxy(depth=3)
    assert store.verify_proxy(proxy) == SUBJECT


def test_untrusted_issuer_rejected(fred):
    empty = CredentialStore()  # trusts nobody
    with pytest.raises(CertificateError):
        empty.verify_proxy(fred.make_proxy())


def test_forged_proxy_signature_rejected(store, fred):
    proxy = fred.make_proxy()
    forged = dataclasses.replace(proxy, signature="f" * 64)
    with pytest.raises(CertificateError):
        store.verify_proxy(forged)


def test_proxy_for_unregistered_user_rejected(ca, store):
    stranger = UserCredentials(certificate=ca.issue("/O=UnivNowhere/CN=Stranger"))
    with pytest.raises(CertificateError):
        store.verify_proxy(stranger.make_proxy())


def test_stolen_certificate_useless_without_secret(ca, store, fred):
    # Mallory copies Fred's public certificate and invents a wallet around it
    mallory = UserCredentials(certificate=fred.certificate, _secret=b"guess")
    with pytest.raises(CertificateError):
        store.verify_proxy(mallory.make_proxy())


def test_proxy_is_mine(fred):
    proxy = fred.make_proxy(depth=2)
    assert fred.proxy_is_mine(proxy)
    other = UserCredentials(certificate=fred.certificate, _secret=b"other")
    assert not other.proxy_is_mine(proxy)


def test_depth_is_signed(store, fred):
    proxy = fred.make_proxy(depth=1)
    tampered = dataclasses.replace(proxy, depth=5)
    with pytest.raises(CertificateError):
        store.verify_proxy(tampered)
