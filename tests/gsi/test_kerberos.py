"""The toy Kerberos KDC."""

import dataclasses

import pytest

from repro.gsi.kerberos import KerberosError, KeyDistributionCenter

CLIENT = "fred@nowhere.edu"
SERVICE = "chirp/server1.nowhere.edu"


@pytest.fixture
def kdc():
    center = KeyDistributionCenter("NOWHERE.EDU")
    center.add_principal(CLIENT)
    return center


def test_ticket_roundtrip(kdc):
    ticket = kdc.issue_ticket(CLIENT, SERVICE)
    assert kdc.verify_ticket(ticket, SERVICE) == CLIENT


def test_unknown_principal_cannot_get_ticket(kdc):
    with pytest.raises(KerberosError):
        kdc.issue_ticket("mallory@nowhere.edu", SERVICE)


def test_ticket_bound_to_service(kdc):
    ticket = kdc.issue_ticket(CLIENT, SERVICE)
    with pytest.raises(KerberosError):
        kdc.verify_ticket(ticket, "chirp/other.nowhere.edu")


def test_tampered_client_rejected(kdc):
    ticket = kdc.issue_ticket(CLIENT, SERVICE)
    forged = dataclasses.replace(ticket, client="root@nowhere.edu")
    with pytest.raises(KerberosError):
        kdc.verify_ticket(forged, SERVICE)


def test_cross_realm_rejected(kdc):
    other = KeyDistributionCenter("ELSEWHERE.EDU")
    other.add_principal(CLIENT)
    ticket = other.issue_ticket(CLIENT, SERVICE)
    with pytest.raises(KerberosError):
        kdc.verify_ticket(ticket, SERVICE)


def test_forged_seal_rejected(kdc):
    ticket = kdc.issue_ticket(CLIENT, SERVICE)
    forged = dataclasses.replace(ticket, seal="0" * 64)
    with pytest.raises(KerberosError):
        kdc.verify_ticket(forged, SERVICE)
