"""Property tests: the federation shard map.

Routing must be *total* (every path has exactly one owner), *stable*
(independent of construction order, process, or path tail), and
*monotone under growth* (adding a shard only moves prefixes onto the
newcomer — never between survivors).  These are the properties that make
a cached shard map safe: two clients with the same membership agree, and
a rebuild after a join invalidates only the stolen ranges.
"""

from hypothesis import given, settings, strategies as st

from repro.chirp.federation import ShardInfo, ShardMap, path_prefix

#: Small rings keep map construction cheap under many examples; balance
#: quality is a bench concern, not a property.
VNODES = 8

shard_names = st.lists(
    st.text(alphabet="abcdefgh0123456789", min_size=1, max_size=8),
    min_size=1,
    max_size=6,
    unique=True,
)

#: Path components; "." and ".." are excluded because normalization
#: resolves them away before routing ever sees them.
prefixes = st.text(
    alphabet="abcdefghijklmnop0123456789._-", min_size=0, max_size=12
).filter(lambda s: s not in (".", ".."))

weights = st.integers(min_value=1, max_value=3)


def build_map(names, version=1, weight_list=None):
    shards = tuple(
        sorted(
            (
                ShardInfo(name=n, hostname=n, weight=(weight_list or {}).get(n, 1))
                for n in names
            ),
            key=lambda s: s.name,
        )
    )
    return ShardMap(federation="pool", version=version, shards=shards, vnodes=VNODES)


@settings(deadline=None)
@given(shard_names, prefixes)
def test_routing_is_total_and_stable(names, prefix):
    shard_map = build_map(names)
    owner = shard_map.shard_for_prefix(prefix)
    assert owner.name in names  # total: always exactly one live owner
    assert shard_map.shard_for_prefix(prefix) is owner  # stable on re-ask
    # a freshly built map with the same membership routes identically:
    # two independent clients always agree (no process-local state)
    rebuilt = build_map(list(reversed(names)))
    assert rebuilt.shard_for_prefix(prefix).name == owner.name


@settings(deadline=None)
@given(shard_names, prefixes, prefixes)
def test_routing_depends_only_on_the_first_path_component(names, prefix, tail):
    shard_map = build_map(names)
    prefix = prefix or "p"  # the root routes by fan-out, not by prefix
    base = shard_map.shard_for(f"/{prefix}").name
    assert shard_map.shard_for(f"/{prefix}/{tail}").name == base
    assert shard_map.shard_for(f"/{prefix}/a/b/c").name == base
    assert path_prefix(f"/{prefix}/{tail}/x") == prefix


@settings(deadline=None)
@given(shard_names, st.text(alphabet="xyz", min_size=1, max_size=4), prefixes)
def test_adding_a_shard_only_moves_prefixes_onto_the_newcomer(
    names, new_suffix, prefix
):
    newcomer = f"new-{new_suffix}"  # disjoint alphabet: never a collision
    before = build_map(names, version=1)
    after = build_map(names + [newcomer], version=2)
    old = before.shard_for_prefix(prefix).name
    new = after.shard_for_prefix(prefix).name
    # monotone: a prefix either stays put or lands on the new shard —
    # growth never shuffles data between surviving shards
    assert new == old or new == newcomer


@settings(deadline=None)
@given(shard_names, weights, prefixes)
def test_weight_changes_preserve_totality(names, weight, prefix):
    weighted = build_map(names, weight_list={names[0]: weight})
    assert weighted.shard_for_prefix(prefix).name in names
