"""Property tests: pipe data integrity under arbitrary interleavings."""

from hypothesis import given, settings, strategies as st

from repro.kernel import Machine
from repro.kernel.pipes import Pipe, WouldBlock

chunks = st.lists(st.binary(min_size=1, max_size=3000), min_size=1, max_size=20)


@settings(max_examples=60, deadline=None)
@given(chunks)
def test_pipe_object_preserves_byte_stream(parts):
    """Whatever goes in comes out, in order, byte for byte."""
    pipe = Pipe(capacity=4096)
    pipe.add_end("r")
    pipe.add_end("w")
    received = bytearray()
    pending = list(parts)
    offset = 0
    stalls = 0
    while pending or offset:
        # alternate writes and reads, tolerating WouldBlock on both sides
        if pending:
            data = pending[0][offset:]
            try:
                n = pipe.write(data)
                offset += n
                if offset >= len(pending[0]):
                    pending.pop(0)
                    offset = 0
                stalls = 0
            except WouldBlock:
                stalls += 1
        try:
            received.extend(pipe.read(1024))
        except WouldBlock:
            pass
        assert stalls < 10_000, "livelock"
    pipe.drop_end("w")
    while True:
        data = pipe.read(4096)
        if not data:
            break
        received.extend(data)
    assert bytes(received) == b"".join(parts)


@settings(max_examples=25, deadline=None)
@given(chunks, st.integers(min_value=1, max_value=8192))
def test_process_pipeline_preserves_byte_stream(parts, read_size):
    """Producer and consumer processes with arbitrary chunk/read sizes.

    The producer is spawned through the real fork+exec path, inheriting
    the pipe's write end via descriptor-table copy — each process owns its
    table, so either side may exit at any point without yanking the
    other's descriptors."""
    machine = Machine()
    cred = machine.add_user("u")
    task = machine.host_task(cred)
    received = []

    def producer(proc, args):
        wfd = int(args[0])
        for part in parts:
            addr = proc.alloc_bytes(part)
            written = 0
            while written < len(part):
                n = yield proc.sys.write(wfd, addr + written, len(part) - written)
                assert isinstance(n, int) and n > 0, f"producer write failed: {n}"
                written += n
        yield proc.sys.close(wfd)
        return 0

    machine.register_program("producer", producer)
    machine.install_program(task, "/home/u/prod.exe", "producer")

    def consumer(proc, args):
        rfd, wfd = yield proc.sys.pipe()
        pid = yield proc.sys.spawn("/home/u/prod.exe", (str(wfd),))
        assert pid > 0
        yield proc.sys.close(wfd)  # keep only the read end
        buf = proc.alloc(max(read_size, 1))
        while True:
            n = yield proc.sys.read(rfd, buf, read_size)
            assert n >= 0, f"consumer read failed: {n}"
            if n == 0:
                break
            received.append(proc.read_buffer(buf, n))
        yield proc.sys.close(rfd)
        yield proc.sys.waitpid()
        return 0

    cproc = machine.spawn(consumer, cred=cred, comm="consumer")
    machine.run_to_completion()
    assert cproc.exit_status == 0
    assert b"".join(received) == b"".join(parts)
