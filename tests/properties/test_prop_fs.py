"""Property tests: filesystem invariants and path normalization."""

import posixpath

from hypothesis import given, settings, strategies as st

from repro.kernel.errno import KernelError
from repro.kernel.localfs import LocalFS
from repro.kernel.vfs import VFS, normalize

names = st.text(alphabet=st.characters(codec="ascii", min_codepoint=97, max_codepoint=122), min_size=1, max_size=6)

segments = st.lists(
    st.one_of(names, st.just("."), st.just(".."), st.just("")), max_size=8
)


@given(segments)
def test_normalize_agrees_with_posixpath(segs):
    path = "/" + "/".join(segs)
    expected = posixpath.normpath(path)
    if expected.startswith("//"):  # POSIX's special leading-double-slash rule
        expected = "/" + expected.lstrip("/")
    assert normalize(path) == expected


@given(segments)
def test_normalize_idempotent(segs):
    path = "/" + "/".join(segs)
    assert normalize(normalize(path)) == normalize(path)


class _Op:
    """One random mutation applied to both LocalFS and a dict model."""


ops = st.lists(
    st.tuples(
        st.sampled_from(["create", "mkdir", "unlink", "rmdir", "link", "write"]),
        names,
        names,
    ),
    max_size=30,
)


@settings(max_examples=60, deadline=None)
@given(ops)
def test_random_operations_preserve_invariants(script):
    """Apply arbitrary operation sequences; structural invariants must hold."""
    fs = LocalFS()
    dirs = {"": fs.root}
    for op, a, b in script:
        try:
            if op == "create":
                fs.create_file(fs.root, a, 1, 1)
            elif op == "mkdir":
                node = fs.mkdir(fs.root, a, 1, 1)
                dirs[a] = node
            elif op == "unlink":
                fs.unlink(fs.root, a)
            elif op == "rmdir":
                fs.rmdir(fs.root, a)
            elif op == "link":
                target = fs.lookup(fs.root, a)
                fs.link(fs.root, b, target)
            elif op == "write":
                node = fs.lookup(fs.root, a)
                fs.write_at(node, 0, b.encode())
        except KernelError:
            pass  # rejected operations must leave the fs consistent
        fs.check_invariants()


@settings(max_examples=40, deadline=None)
@given(st.lists(names, min_size=1, max_size=5))
def test_resolution_of_created_paths(parts):
    """mkdir -p any path, then resolution finds every prefix."""
    fs = LocalFS()
    vfs = VFS(fs)
    current = fs.root
    for part in parts:
        try:
            current = fs.mkdir(current, part, 1, 1)
        except KernelError:  # duplicate name along the way
            current = fs.lookup(current, part)
    for i in range(1, len(parts) + 1):
        res = vfs.resolve("/" + "/".join(parts[:i]))
        assert res.exists
        assert res.require().is_dir


@settings(max_examples=40, deadline=None)
@given(names, st.binary(max_size=512), st.integers(min_value=0, max_value=600))
def test_write_read_at_roundtrip(name, data, offset):
    fs = LocalFS()
    node = fs.create_file(fs.root, name, 1, 1)
    fs.write_at(node, offset, data)
    assert fs.read_at(node, offset, len(data)) == bytes(data)
    assert node.size == (offset + len(data) if data else 0)
