"""Property tests: ACL serialization and evaluation."""

from hypothesis import given, strategies as st

from repro.core.acl import Acl, AclEntry
from repro.core.rights import RIGHT_LETTERS, Rights

subject_chars = st.characters(
    codec="ascii", exclude_categories=("Zs", "Cc"), exclude_characters="#"
)
subjects = st.text(alphabet=subject_chars, min_size=1, max_size=30)

rights_strat = st.builds(
    Rights,
    flags=st.sets(st.sampled_from(list(RIGHT_LETTERS)), min_size=1).map(frozenset),
    reserve=st.one_of(
        st.none(),
        st.sets(st.sampled_from(list(RIGHT_LETTERS)), min_size=1).map(frozenset),
    ),
)

entries = st.builds(AclEntry, subject=subjects, rights=rights_strat)
acls = st.builds(Acl, entries=st.lists(entries, max_size=8))


@given(acls)
def test_render_parse_roundtrip(acl):
    again = Acl.parse(acl.render())
    assert again.subjects() == acl.subjects()
    for entry in acl:
        assert again.rights_for(entry.subject).has_all("".join(entry.rights.flags))


@given(acls, subjects)
def test_rights_is_union_of_matching_entries(acl, identity):
    expected = Rights.none()
    for entry in acl:
        if entry.matches(identity):
            expected = expected | entry.rights
    assert acl.rights_for(identity) == expected


@given(acls, subjects, rights_strat)
def test_set_entry_then_lookup(acl, subject, rights):
    acl.set_entry(subject, rights)
    # after a set, exactly one entry for the subject exists
    assert acl.subjects().count(subject) == 1


@given(acls, subjects)
def test_remove_entry_removes(acl, subject):
    acl.remove_entry(subject)
    assert subject not in acl.subjects()


@given(acls)
def test_copy_equal_but_independent(acl):
    twin = acl.copy()
    assert twin.render() == acl.render()
    twin.set_entry("fresh-subject", Rights.full())
    assert "fresh-subject" not in acl.subjects()


@given(acls, subjects)
def test_allows_consistent_with_rights_for(acl, identity):
    rights = acl.rights_for(identity)
    for letter in RIGHT_LETTERS:
        assert acl.allows(identity, letter) == rights.has(letter)
