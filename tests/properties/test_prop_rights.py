"""Property tests: the Rights algebra."""

from hypothesis import given, strategies as st

from repro.core.rights import RIGHT_LETTERS, Rights

letters = st.sets(st.sampled_from(list(RIGHT_LETTERS)))
maybe_reserve = st.one_of(st.none(), letters)


@st.composite
def rights(draw):
    return Rights(
        flags=frozenset(draw(letters)),
        reserve=(lambda r: None if r is None else frozenset(r))(draw(maybe_reserve)),
    )


@given(rights())
def test_str_parse_roundtrip(r):
    # the one unparseable rendering is an empty reserve set; skip via format
    text = str(r)
    if "v()" in text:
        return
    assert Rights.parse(text) == r


@given(rights(), rights())
def test_union_commutative(a, b):
    assert a | b == b | a


@given(rights(), rights(), rights())
def test_union_associative(a, b, c):
    assert (a | b) | c == a | (b | c)


@given(rights())
def test_union_idempotent(r):
    assert r | r == r


@given(rights())
def test_union_with_none_is_identity(r):
    assert r | Rights.none() == r


@given(rights(), rights())
def test_union_only_grows(a, b):
    merged = a | b
    for letter in RIGHT_LETTERS:
        if a.has(letter) or b.has(letter):
            assert merged.has(letter)
    if a.reserve is not None or b.reserve is not None:
        assert merged.reserve is not None


@given(rights())
def test_has_all_of_own_flags(r):
    assert r.has_all("".join(r.flags))


@given(rights())
def test_is_empty_iff_nothing(r):
    assert r.is_empty == (not r.flags and r.reserve is None)


@given(st.text(alphabet=list(RIGHT_LETTERS), max_size=10))
def test_parse_never_crashes_on_right_letters(text):
    parsed = Rights.parse(text)
    for ch in set(text):
        assert parsed.has(ch)
