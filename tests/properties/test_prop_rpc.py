"""Property tests: the wire codec."""

from hypothesis import given, settings, strategies as st

from repro.net.rpc import decode_message, encode_message

keys = st.text(
    alphabet=st.characters(codec="ascii", min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=10,
)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=50),
    st.binary(max_size=200),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(keys, children, max_size=4),
    ),
    max_leaves=12,
)

messages = st.dictionaries(keys, values, max_size=6)


@settings(deadline=None)
@given(messages)
def test_roundtrip(message):
    assert decode_message(encode_message(message)) == message


@settings(deadline=None)
@given(messages)
def test_encoding_deterministic(message):
    assert encode_message(message) == encode_message(message)


@given(st.binary(max_size=5000))
def test_bytes_payloads_exact(data):
    assert decode_message(encode_message({"d": data}))["d"] == data


@given(messages)
def test_wire_is_pure_utf8(message):
    encode_message(message).decode("utf-8")  # must not raise
