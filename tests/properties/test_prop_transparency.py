"""Property test: interposition transparency for benign programs.

The paper's §6 bottom line: interposition "can be made to work for real
applications" — a program that stays within its rights must behave
*identically* inside an identity box.  Hypothesis generates random benign
programs (file and directory operations confined to the working
directory); we run each twice — unboxed in a plain directory, boxed in a
visitor home — and require the two syscall-result transcripts to match
exactly, fd numbers included.

The one legitimate difference is the box's ``.passwd`` convenience file,
filtered from directory listings before comparison.
"""

from hypothesis import given, settings, strategies as st

from repro.core.box import IdentityBox
from repro.kernel import Machine, OpenFlags

NAMES = ["a", "b", "c", "sub", "sub/x"]

names = st.sampled_from(NAMES)
data_sizes = st.sampled_from([1, 30, 100, 5000])

ops = st.one_of(
    st.tuples(st.just("create"), names, data_sizes),
    st.tuples(st.just("read"), names),
    st.tuples(st.just("append"), names, data_sizes),
    st.tuples(st.just("stat"), names),
    st.tuples(st.just("mkdir"), names),
    st.tuples(st.just("unlink"), names),
    st.tuples(st.just("rmdir"), names),
    st.tuples(st.just("rename"), names, names),
    st.tuples(st.just("symlink"), names, names),
    st.tuples(st.just("readdir"), st.sampled_from([".", "sub"])),
    st.tuples(st.just("truncate"), names, data_sizes),
)

programs = st.lists(ops, min_size=1, max_size=12)


def benign_body(script, transcript):
    def body(proc, args):
        def note(value):
            if isinstance(value, list):
                transcript.append(tuple(v for v in value if v != ".passwd"))
            elif hasattr(value, "st_size"):
                # directory sizes are fs-specific (and a boxed directory
                # physically holds its .__acl file, as under real Parrot),
                # so only file sizes are compared
                size = value.st_size if value.is_file else None
                transcript.append(("stat", size, value.is_dir))
            else:
                transcript.append(value)

        for step in script:
            op, rest = step[0], step[1:]
            if op == "create":
                fd = yield proc.sys.open(
                    rest[0], OpenFlags.O_WRONLY | OpenFlags.O_CREAT | OpenFlags.O_TRUNC
                )
                note(fd)
                if isinstance(fd, int) and fd >= 0:
                    addr = proc.alloc_bytes(b"D" * rest[1])
                    note((yield proc.sys.write(fd, addr, rest[1])))
                    note((yield proc.sys.close(fd)))
            elif op == "append":
                fd = yield proc.sys.open(rest[0], OpenFlags.O_WRONLY | OpenFlags.O_APPEND)
                note(fd)
                if isinstance(fd, int) and fd >= 0:
                    addr = proc.alloc_bytes(b"A" * rest[1])
                    note((yield proc.sys.write(fd, addr, rest[1])))
                    note((yield proc.sys.close(fd)))
            elif op == "read":
                fd = yield proc.sys.open(rest[0], OpenFlags.O_RDONLY)
                note(fd)
                if isinstance(fd, int) and fd >= 0:
                    buf = proc.alloc(8192)
                    n = yield proc.sys.read(fd, buf, 8192)
                    note(n)
                    if isinstance(n, int) and n > 0:
                        note(proc.read_buffer(buf, n))
                    note((yield proc.sys.close(fd)))
            elif op == "rename":
                note((yield proc.sys.rename(rest[0], rest[1])))
            elif op == "symlink":
                note((yield proc.sys.symlink(rest[0], rest[1])))
            elif op == "truncate":
                note((yield proc.sys.truncate(rest[0], rest[1])))
            else:  # stat / mkdir / unlink / rmdir / readdir
                note((yield getattr(proc.sys, op)(*rest)))
        return 0

    return body


def run_unboxed(script):
    machine = Machine()
    cred = machine.add_user("plain")
    transcript = []
    machine.spawn(
        benign_body(script, transcript), cred=cred, cwd="/home/plain", comm="plain"
    )
    machine.run_to_completion()
    return transcript


def run_boxed(script):
    machine = Machine()
    cred = machine.add_user("host")
    box = IdentityBox(machine, cred, "Visitor")
    transcript = []
    box.spawn(benign_body(script, transcript), comm="boxed")
    machine.run_to_completion()
    return transcript


@settings(max_examples=60, deadline=None)
@given(programs)
def test_benign_programs_see_identical_results(script):
    assert run_boxed(script) == run_unboxed(script)
