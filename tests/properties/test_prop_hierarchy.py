"""Property tests: the hierarchical identity namespace."""

from hypothesis import given, strategies as st

from repro.core.hierarchy import HierarchicalIdentity, IdentityTree

labels = st.text(
    alphabet=st.characters(codec="ascii", min_codepoint=33, max_codepoint=126, exclude_characters=":"),
    min_size=1,
    max_size=8,
)

identities = st.builds(
    HierarchicalIdentity,
    st.lists(labels, min_size=1, max_size=5).map(tuple),
)


@given(identities)
def test_parse_str_roundtrip(node):
    assert HierarchicalIdentity.parse(str(node)) == node


@given(identities, labels)
def test_child_parent_inverse(node, label):
    assert node.child(label).parent == node


@given(identities, identities)
def test_ancestry_antisymmetric(a, b):
    assert not (a.is_ancestor_of(b) and b.is_ancestor_of(a))


@given(identities, identities, identities)
def test_ancestry_transitive(a, b, c):
    if a.is_ancestor_of(b) and b.is_ancestor_of(c):
        assert a.is_ancestor_of(c)


@given(identities)
def test_never_own_ancestor(node):
    assert not node.is_ancestor_of(node)
    assert node.may_manage(node)


@given(identities, labels)
def test_ancestor_depth_strictly_smaller(node, label):
    child = node.child(label)
    assert node.is_ancestor_of(child)
    assert node.depth < child.depth


@given(st.lists(labels, min_size=1, max_size=6, unique=True))
def test_tree_creation_chain(chain):
    """Building a chain of identities under root always succeeds, and every
    ancestor manages every descendant."""
    tree = IdentityTree()
    current = tree.root
    nodes = [current]
    for label in chain:
        current = tree.create(current, current, label)
        nodes.append(current)
    for i, ancestor in enumerate(nodes):
        for descendant in nodes[i + 1 :]:
            assert tree.may_signal(ancestor, descendant)
            assert not tree.may_signal(descendant, ancestor)


@given(st.lists(labels, min_size=2, max_size=5, unique=True))
def test_destroy_removes_exactly_the_subtree(chain):
    tree = IdentityTree()
    branch_a = tree.create(tree.root, tree.root, chain[0])
    for label in chain[1:]:
        tree.create(branch_a, branch_a, label)
    branch_b = tree.create(tree.root, tree.root, chain[0] + "-other")
    count_before = len(tree)
    tree.destroy(tree.root, branch_a)
    assert tree.exists(branch_b)
    assert not tree.exists(branch_a)
    assert len(tree) == count_before - len(chain)
