"""Property tests: world snapshots — fork isolation and byte-identical restore.

Two laws the copy-on-write refactor must uphold under arbitrary operation
sequences:

1. **No cross-talk.**  A fork and its parent (and sibling forks) are fully
   independent worlds: mutations on one side are never visible on the
   other, in either direction.

2. **Byte-identical restore.**  ``Machine.restore(snap)`` rewinds *all*
   captured state — file bytes, stat metadata, directory structure,
   symlink targets, ACL files, the account database, and the clock — to
   exactly what ``Machine.snapshot()`` saw.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.kernel import KernelError, Machine

names = st.text(
    alphabet=st.characters(codec="ascii", min_codepoint=97, max_codepoint=122),
    min_size=1,
    max_size=6,
)

#: One mutation against the world: filesystem edits of every CoW-relevant
#: shape (data write, metadata-only touch, namespace add/remove, symlink)
#: plus an identity-table edit.
ops = st.lists(
    st.tuples(
        st.sampled_from(["write", "mkdir", "chmod", "unlink", "symlink", "adduser"]),
        names,
        st.binary(max_size=64),
    ),
    max_size=25,
)


def _apply(machine: Machine, task, script) -> None:
    """Apply an operation script, ignoring expected per-op failures."""
    for kind, name, payload in script:
        path = "/" + name
        try:
            if kind == "write":
                machine.write_file(task, path, payload)
            elif kind == "mkdir":
                machine.kcall_x(task, "mkdir", path, 0o755)
            elif kind == "chmod":
                machine.kcall_x(task, "chmod", path, 0o700)
            elif kind == "unlink":
                machine.kcall_x(task, "unlink", path)
            elif kind == "symlink":
                machine.kcall_x(task, "symlink", "/" + (name[::-1] or "x"), path + ".l")
            elif kind == "adduser":
                machine.add_user("u" + name)
        except KernelError:
            pass  # e.g. unlink of a directory, duplicate user — irrelevant here


def _fingerprint(machine: Machine):
    """Everything a snapshot captures, as one comparable value.

    Walks the live filesystem recursively (stat fields, file bytes,
    symlink targets — ACLs are ``.__acl`` files, so they ride along) and
    appends the rendered account database and the simulated clock.
    """
    fs = machine.fs
    out = []

    def walk(node, path):
        node = fs.current(node)
        out.append(
            (
                path,
                node.ftype.name,
                node.mode,
                node.uid,
                node.gid,
                node.nlink,
                node.mtime_ns,
                node.ctime_ns,
                bytes(node.data) if node.is_file else b"",
                node.symlink_target,
            )
        )
        if node.is_dir:
            for name in sorted(node.entries):
                walk(fs.inode(node.entries[name]), path + "/" + name)

    walk(fs.root, "")
    out.append(machine.users.render_passwd())
    out.append(machine.clock.now_ns)
    return out


def _boot() -> tuple[Machine, object]:
    machine = Machine()
    task = machine.host_task(machine.users.credentials_for("root"))
    return machine, task


@settings(max_examples=40, deadline=None)
@given(ops, ops, ops)
def test_fork_isolation(warm_script, fork_script, parent_script):
    """Mutations on a fork never leak to the parent, siblings, or snapshot."""
    machine, task = _boot()
    _apply(machine, task, warm_script)
    snap = machine.snapshot()
    baseline = _fingerprint(machine)

    # mutate a first fork heavily
    child_a = machine.fork(snap)
    task_a = child_a.host_task(child_a.users.credentials_for("root"))
    _apply(child_a, task_a, fork_script)

    # the parent and a fresh sibling fork still see the snapshot's world
    assert _fingerprint(machine) == baseline
    child_b = machine.fork(snap)
    assert _fingerprint(child_b) == baseline

    # mutations on the *parent* are invisible to existing forks
    fp_a = _fingerprint(child_a)
    _apply(machine, task, parent_script)
    assert _fingerprint(child_a) == fp_a
    assert _fingerprint(child_b) == baseline


@settings(max_examples=40, deadline=None)
@given(ops, ops)
def test_restore_byte_identical(warm_script, mutate_script):
    """restore() rewinds every captured byte: fs, identity tables, clock."""
    machine, task = _boot()
    _apply(machine, task, warm_script)
    snap = machine.snapshot()
    before = _fingerprint(machine)

    _apply(machine, task, mutate_script)
    machine.restore(snap)

    assert _fingerprint(machine) == before
    # and the restored world is fully usable: new tasks, new edits
    task2 = machine.host_task(machine.users.credentials_for("root"))
    machine.write_file(task2, "/post-restore", b"ok")
    assert machine.read_file(task2, "/post-restore") == b"ok"
