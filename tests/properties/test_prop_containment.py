"""Property test: identity-box containment under random hostile programs.

Hypothesis generates arbitrary sequences of syscalls with arbitrary path
targets (including escape attempts); after the boxed program runs, nothing
outside the nobody-writable zone (``/tmp``) may have changed — not content,
not modes, not link counts, not namespace structure — and the filesystem's
structural invariants must hold.

This is the paper's central security claim ("users cannot escape from an
identity box") expressed as an executable property.
"""

from hypothesis import given, settings, strategies as st

from repro.core.box import IdentityBox
from repro.kernel.fdtable import OpenFlags
from repro.kernel.machine import Machine
from repro.kernel.signals import Signal

#: Paths a hostile program might aim at: inside, outside, escapes, specials.
PATHS = [
    "mine.txt",
    "sub",
    "sub/deeper.txt",
    "../../../home/alice/secret",
    "/home/alice/secret",
    "/home/alice/public",
    "/home/alice",
    "/etc/passwd",
    "/etc",
    "/home/alice/planted",
    ".__acl",
    "/home/alice/.__acl",
    "/tmp/scratch",
    "link-out",
    "/",
    "..",
]

paths = st.sampled_from(PATHS)

ops = st.one_of(
    st.tuples(st.just("open_write"), paths),
    st.tuples(st.just("open_read"), paths),
    st.tuples(st.just("unlink"), paths),
    st.tuples(st.just("mkdir"), paths),
    st.tuples(st.just("rmdir"), paths),
    st.tuples(st.just("rename"), paths, paths),
    st.tuples(st.just("symlink"), paths, paths),
    st.tuples(st.just("link"), paths, paths),
    st.tuples(st.just("chmod"), paths),
    st.tuples(st.just("truncate"), paths),
    st.tuples(st.just("setacl"), paths),
    st.tuples(st.just("chdir"), paths),
    st.tuples(st.just("kill"), st.integers(min_value=1, max_value=200)),
    st.tuples(st.just("stat"), paths),
    st.tuples(st.just("readdir"), paths),
    st.tuples(st.just("pipe")),
    st.tuples(st.just("thread")),
    st.tuples(st.just("dup_guess"), st.integers(min_value=0, max_value=1005)),
    st.tuples(st.just("close_guess"), st.integers(min_value=0, max_value=1005)),
)

programs = st.lists(ops, min_size=1, max_size=15)


def build_world() -> tuple[Machine, IdentityBox]:
    machine = Machine()
    alice = machine.add_user("alice")
    task = machine.host_task(alice)
    machine.write_file(task, "/home/alice/secret", b"secret", mode=0o600)
    machine.write_file(task, "/home/alice/public", b"public", mode=0o644)
    machine.kcall_x(task, "mkdir", "/home/alice/keep", 0o755)
    machine.write_file(task, "/home/alice/keep/data", b"kept", mode=0o644)
    box = IdentityBox(machine, alice, "Fuzzer")
    return machine, box


def snapshot_outside(machine: Machine) -> dict:
    """Everything outside /tmp: structure, content, modes, owners, links.

    Access times are excluded — world-readable files may legitimately be
    read by the visitor; the property is about *modification*.
    """
    fs = machine.fs
    state: dict = {}

    def walk(node, path):
        state[path] = (
            node.ftype.value,
            node.mode,
            node.uid,
            node.nlink,
            bytes(node.data) if node.is_file else node.symlink_target,
        )
        if node.is_dir:
            for name, ino in sorted(node.entries.items()):
                child_path = f"{path.rstrip('/')}/{name}"
                if child_path.startswith("/tmp"):
                    continue
                walk(fs.inode(ino), child_path)

    walk(fs.root, "/")
    return state


def hostile_body(script):
    def body(proc, args):
        fds = []
        for step in script:
            op, rest = step[0], step[1:]
            if op == "open_write":
                fd = yield proc.sys.open(
                    rest[0], OpenFlags.O_WRONLY | OpenFlags.O_CREAT
                )
                if isinstance(fd, int) and fd >= 0:
                    addr = proc.alloc_bytes(b"overwrite!")
                    yield proc.sys.write(fd, addr, 10)
                    fds.append(fd)
            elif op == "open_read":
                fd = yield proc.sys.open(rest[0], OpenFlags.O_RDONLY)
                if isinstance(fd, int) and fd >= 0:
                    buf = proc.alloc(64)
                    yield proc.sys.read(fd, buf, 64)
                    fds.append(fd)
            elif op == "rename":
                yield proc.sys.rename(rest[0], rest[1])
            elif op == "symlink":
                yield proc.sys.symlink(rest[0], rest[1])
            elif op == "link":
                yield proc.sys.link(rest[0], rest[1])
            elif op == "chmod":
                yield proc.sys.chmod(rest[0], 0o777)
            elif op == "truncate":
                yield proc.sys.truncate(rest[0], 0)
            elif op == "setacl":
                yield proc.sys.setacl(rest[0], "Fuzzer", "rwlxa")
            elif op == "kill":
                yield proc.sys.kill(rest[0], int(Signal.SIGKILL))
            elif op == "pipe":
                result = yield proc.sys.pipe()
                if isinstance(result, tuple):
                    rfd, wfd = result
                    addr = proc.alloc_bytes(b"pp")
                    yield proc.sys.write(wfd, addr, 2)
                    buf = proc.alloc(4)
                    yield proc.sys.read(rfd, buf, 4)
                    fds.extend((rfd, wfd))
            elif op == "thread":
                def benign(tproc, targs):
                    yield tproc.compute(us=1)
                    return 0

                tid = yield proc.sys.thread(benign)
                if isinstance(tid, int) and tid > 0:
                    yield proc.sys.waitpid()
            elif op == "dup_guess":
                yield proc.sys.dup(rest[0])
            elif op == "close_guess":
                yield proc.sys.close(rest[0])
            else:  # unary path ops: unlink/mkdir/rmdir/chdir/stat/readdir
                yield getattr(proc.sys, op)(rest[0])
        for fd in fds:
            yield proc.sys.close(fd)
        return 0

    return body


@settings(max_examples=50, deadline=None)
@given(programs)
def test_random_hostile_programs_are_contained(script):
    machine, box = build_world()
    before = snapshot_outside(machine)
    box.spawn(hostile_body(script), comm="fuzzer")
    machine.run(max_steps=500_000)
    after = snapshot_outside(machine)
    assert after == before, "a boxed program modified the world outside /tmp"
    machine.fs.check_invariants()


@settings(max_examples=25, deadline=None)
@given(programs, programs)
def test_two_identities_cannot_corrupt_each_other(script_a, script_b):
    """Two fuzzing visitors under one supervisor: each one's home survives
    byte-identical except what its *own* program did."""
    machine = Machine()
    alice = machine.add_user("alice")
    box_a = IdentityBox(machine, alice, "FuzzA")
    box_b = IdentityBox(machine, alice, "FuzzB", supervisor=box_a.supervisor)
    # seed a marker in each home
    task = machine.host_task(alice)
    machine.write_file(task, f"{box_a.home}/marker", b"A's data")
    machine.write_file(task, f"{box_b.home}/marker", b"B's data")
    # A runs a hostile script aimed (partly) at B's home, and vice versa
    retarget_a = [
        (op, *(arg.replace("mine.txt", f"{box_b.home}/marker") if isinstance(arg, str) else arg for arg in rest))
        for op, *rest in script_a
    ]
    box_a.spawn(hostile_body(retarget_a), comm="fuzz-a")
    machine.run(max_steps=500_000)
    retarget_b = [
        (op, *(arg.replace("mine.txt", f"{box_a.home}/marker") if isinstance(arg, str) else arg for arg in rest))
        for op, *rest in script_b
    ]
    box_b.spawn(hostile_body(retarget_b), comm="fuzz-b")
    machine.run(max_steps=500_000)
    assert machine.read_file(task, f"{box_a.home}/marker") == b"A's data"
    assert machine.read_file(task, f"{box_b.home}/marker") == b"B's data"
    machine.fs.check_invariants()
