"""Property tests: identity validation and wildcard matching."""

from hypothesis import given, strategies as st

from repro.core.identity import (
    identity_matches,
    mangle_for_path,
    validate_identity,
)

#: printable, no whitespace — the identity alphabet
ident_chars = st.characters(
    codec="ascii", exclude_categories=("Zs", "Cc"), exclude_characters="*?"
)
identities = st.text(alphabet=ident_chars, min_size=1, max_size=40)


@given(identities)
def test_valid_identities_accepted(identity):
    assert validate_identity(identity) == identity


@given(identities)
def test_identity_matches_itself(identity):
    assert identity_matches(identity, identity)


@given(identities)
def test_star_matches_everything(identity):
    assert identity_matches("*", identity)


@given(identities, st.integers(min_value=0, max_value=39))
def test_prefix_star_pattern_matches(identity, cut):
    cut = min(cut, len(identity))
    assert identity_matches(identity[:cut] + "*", identity)


@given(identities, st.integers(min_value=0, max_value=39))
def test_star_suffix_pattern_matches(identity, cut):
    cut = min(cut, len(identity))
    assert identity_matches("*" + identity[cut:], identity)


@given(identities, st.integers(min_value=0, max_value=38))
def test_question_mark_replaces_one_char(identity, pos):
    if pos >= len(identity):
        return
    pattern = identity[:pos] + "?" + identity[pos + 1 :]
    assert identity_matches(pattern, identity)


@given(identities, identities)
def test_exact_patterns_match_only_equal(a, b):
    assert identity_matches(a, b) == (a == b)


@given(identities)
def test_mangle_produces_path_safe_component(identity):
    mangled = mangle_for_path(identity)
    assert "/" not in mangled
    assert ":" not in mangled
    assert mangled  # never empty for non-empty identity


@given(identities, identities)
def test_mangle_is_injective(a, b):
    if a != b:
        assert mangle_for_path(a) != mangle_for_path(b)
