"""Property test: the Chirp server survives arbitrary garbage frames.

A network-facing service run by an unprivileged user is still a security
boundary; random bytes, truncated JSON, wrong-typed fields, and surprise
ops must all come back as clean error frames — never an exception, never a
hung connection, never state corruption.
"""

from hypothesis import given, settings, strategies as st

from repro.chirp import ChirpServer, ServerAuth
from repro.core import Acl, Rights
from repro.net import Cluster, decode_message, encode_message


def build_server():
    cluster = Cluster()
    cluster.add_machine("srv")
    cluster.add_machine("cli")
    machine = cluster.machine("srv")
    owner = machine.add_user("op")
    server = ChirpServer(machine, owner, network=cluster.network)
    acl = Acl()
    acl.set_entry("hostname:*", Rights.parse("rwlxa"))
    server.set_root_acl(acl)
    server.serve()
    return cluster, server


raw_frames = st.binary(max_size=300)

json_keys = st.sampled_from(
    ["op", "path", "fd", "flags", "mode", "data", "offset", "length", "subject", "rights", "method", "payload", "args", "cwd"]
)
json_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**40), max_value=2**40),
    st.text(max_size=30),
    st.binary(max_size=50),
    st.lists(st.integers(), max_size=3),
)
shaped_messages = st.dictionaries(json_keys, json_values, max_size=6)

op_names = st.sampled_from(
    ["open", "close", "pread", "pwrite", "stat", "mkdir", "rename", "setacl", "exec", "auth", "whoami", "frobnicate", ""]
)


@settings(max_examples=80, deadline=None)
@given(raw_frames)
def test_random_bytes_get_error_frames(frame):
    cluster, _server = build_server()
    conn = cluster.network.connect("cli", "srv", 9094)
    reply = decode_message(conn.handler.handle(frame))
    assert reply["ok"] is False


@settings(max_examples=80, deadline=None)
@given(op_names, shaped_messages)
def test_malformed_requests_never_crash(op, fields):
    cluster, server = build_server()
    conn = cluster.network.connect("cli", "srv", 9094)
    message = dict(fields)
    message["op"] = op
    reply = decode_message(conn.handler.handle(encode_message(message)))
    assert isinstance(reply.get("ok"), bool)
    # whatever happened, the connection still works for a legitimate login
    login = decode_message(
        conn.handler.handle(
            encode_message({"op": "auth", "method": "hostname", "payload": {}})
        )
    )
    assert login["ok"] is True


@settings(max_examples=40, deadline=None)
@given(shaped_messages)
def test_authenticated_garbage_cannot_corrupt_export(fields):
    """Even authenticated, malformed ops must leave the export intact."""
    cluster, server = build_server()
    conn = cluster.network.connect("cli", "srv", 9094)
    conn.handler.handle(
        encode_message({"op": "auth", "method": "hostname", "payload": {}})
    )
    for op in ("open", "pwrite", "rename", "setacl", "exec"):
        message = dict(fields)
        message["op"] = op
        reply = decode_message(conn.handler.handle(encode_message(message)))
        assert isinstance(reply.get("ok"), bool)
    # the export root and its ACL survived
    acl = server.policy.acl_of(server.export_root)
    assert acl is not None and acl.rights_for("hostname:cli").has_all("rwlxa")
