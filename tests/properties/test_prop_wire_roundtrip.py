"""Property test: wire codec round-trips, including tag-shaped payloads.

:mod:`tests.properties.test_prop_rpc` already round-trips generic nested
messages, but its key strategy will essentially never generate the codec's
own reserved tags.  This suite forces the issue: keys are drawn from a mix
of ordinary text *and* the literal ``__b64__``/``__esc__`` tag names, so
the escape layer added for the tag-collision fix is exercised at every
nesting depth, not just in the hand-written unit cases.
"""

from hypothesis import given, settings, strategies as st

from repro.net.rpc import decode_message, encode_message

tag_keys = st.sampled_from(["__b64__", "__esc__"])

plain_keys = st.text(
    alphabet=st.characters(codec="ascii", min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=8,
)

keys = st.one_of(plain_keys, tag_keys)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
    st.binary(max_size=100),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(keys, children, max_size=4),
    ),
    max_leaves=16,
)

messages = st.dictionaries(keys, values, max_size=5)


@settings(deadline=None, max_examples=200)
@given(messages)
def test_roundtrip_with_tag_shaped_keys(message):
    assert decode_message(encode_message(message)) == message


@settings(deadline=None)
@given(values)
def test_roundtrip_under_a_fixed_field(value):
    # every generated value survives when nested one level down, the shape
    # all real RPC payloads take ({"op": ..., field: value})
    message = {"field": value}
    assert decode_message(encode_message(message)) == message


@settings(deadline=None)
@given(st.dictionaries(tag_keys, values, min_size=1, max_size=2))
def test_roundtrip_of_dicts_made_only_of_tags(message):
    # the worst case: the whole message is reserved-tag keys
    assert decode_message(encode_message(message)) == message
