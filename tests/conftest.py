"""Shared fixtures for the reproduction's test suite.

Hypothesis profiles: ``dev`` (the default) behaves normally; ``ci``
derandomizes every property test so a CI run is fully reproducible —
the same examples on every machine, no flaky shrink timeouts.  Select
with ``HYPOTHESIS_PROFILE=ci``.
"""

from __future__ import annotations

import os

import pytest

from repro.core.box import IdentityBox
from repro.kernel.machine import Machine

from tests.helpers import make_machine

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - hypothesis is a test-only dep
    settings = None

if settings is not None:
    settings.register_profile("dev", settings())
    settings.register_profile("ci", derandomize=True, deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def machine() -> Machine:
    """A fresh simulated host.

    Under ``REPRO_SNAPSHOT_FIXTURES=1`` this is an O(size-of-diff) fork of
    a once-per-session warm world instead of a cold boot — observably
    identical, measurably faster (see ``benchmarks/bench_snapshot_fork.py``).
    """
    return make_machine()


@pytest.fixture
def alice(machine):
    """An ordinary local user with a home directory."""
    return machine.add_user("alice")


@pytest.fixture
def alice_task(machine, alice):
    """A host-level task running as alice, cwd in her home."""
    return machine.host_task(alice, cwd="/home/alice")


@pytest.fixture
def root_task(machine):
    return machine.host_task(machine.users.credentials_for("root"))


@pytest.fixture
def box(machine, alice):
    """An identity box supervised by alice for visitor 'Visitor'."""
    return IdentityBox(machine, alice, "Visitor")
