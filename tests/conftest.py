"""Shared fixtures for the reproduction's test suite."""

from __future__ import annotations

import pytest

from repro.core.box import IdentityBox
from repro.kernel.machine import Machine


@pytest.fixture
def machine() -> Machine:
    """A fresh simulated host."""
    return Machine()


@pytest.fixture
def alice(machine):
    """An ordinary local user with a home directory."""
    return machine.add_user("alice")


@pytest.fixture
def alice_task(machine, alice):
    """A host-level task running as alice, cwd in her home."""
    return machine.host_task(alice, cwd="/home/alice")


@pytest.fixture
def root_task(machine):
    return machine.host_task(machine.users.credentials_for("root"))


@pytest.fixture
def box(machine, alice):
    """An identity box supervised by alice for visitor 'Visitor'."""
    return IdentityBox(machine, alice, "Visitor")
