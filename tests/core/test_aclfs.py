"""The ACL reference monitor over the VFS."""

import pytest

from repro.core.acl import ACL_FILE_NAME, Acl
from repro.core.aclfs import AclPolicy
from repro.core.rights import Rights
from repro.kernel.errno import Errno, KernelError

FRED = "/O=X/CN=Fred"
GEORGE = "/O=X/CN=George"


@pytest.fixture
def policy(machine, alice_task):
    return AclPolicy(machine, alice_task)


@pytest.fixture
def shared(machine, alice_task, policy):
    """/home/alice/shared with Fred rwlxa and a wildcard rl entry."""
    machine.kcall_x(alice_task, "mkdir", "/home/alice/shared", 0o755)
    acl = Acl.for_owner(FRED)
    acl.set_entry("/O=X/*", Rights.parse("rl"))
    policy.write_acl("/home/alice/shared", acl)
    machine.write_file(alice_task, "/home/alice/shared/data.txt", b"hello")
    return "/home/alice/shared"


def test_acl_of_missing_is_none(policy):
    assert policy.acl_of("/home/alice") is None


def test_acl_write_read_roundtrip(policy, shared):
    acl = policy.acl_of(shared)
    assert acl is not None
    assert acl.rights_for(FRED).has_all("rwlxa")


def test_check_allows_by_acl(policy, shared):
    assert policy.check(FRED, f"{shared}/data.txt", "rw").allowed
    assert policy.check(GEORGE, f"{shared}/data.txt", "r").allowed


def test_check_denies_missing_right(policy, shared):
    decision = policy.check(GEORGE, f"{shared}/data.txt", "w")
    assert not decision.allowed
    assert "acl(" in decision.reason


def test_check_denies_unknown_identity(policy, shared):
    assert not policy.check("/O=Else/CN=Eve", f"{shared}/data.txt", "r").allowed


def test_require_raises_eacces(policy, shared):
    with pytest.raises(KernelError) as info:
        policy.require(GEORGE, f"{shared}/data.txt", "w")
    assert info.value.errno is Errno.EACCES


def test_nobody_fallback_denies_private_file(machine, alice_task, policy):
    machine.write_file(alice_task, "/home/alice/secret", b"x", mode=0o600)
    decision = policy.check(FRED, "/home/alice/secret", "r")
    assert not decision.allowed
    assert decision.reason == "unix-fallback-as-nobody"


def test_nobody_fallback_allows_world_readable(machine, alice_task, policy):
    machine.write_file(alice_task, "/home/alice/public", b"x", mode=0o644)
    assert policy.check(FRED, "/home/alice/public", "r").allowed


def test_nobody_fallback_never_grants_admin_or_reserve(machine, alice_task, policy):
    machine.kcall_x(alice_task, "mkdir", "/home/alice/open", 0o777)
    assert not policy.check(FRED, "/home/alice/open", "a").allowed
    assert not policy.check(FRED, "/home/alice/open", "v").allowed


def test_dir_own_acl_governs_listing(policy, shared):
    assert policy.check(GEORGE, shared, "l").allowed
    assert not policy.check(GEORGE, shared, "w").allowed


def test_parent_scope_for_namespace_mutation(machine, alice_task, policy, shared):
    # removing `sub` is governed by `shared`'s ACL under parent scope
    machine.kcall_x(alice_task, "mkdir", f"{shared}/sub", 0o755)
    assert policy.check(FRED, f"{shared}/sub", "w", scope="parent").allowed
    assert not policy.check(GEORGE, f"{shared}/sub", "w", scope="parent").allowed


# -- symlinks: the "indirect paths" pitfall (§6) --------------------------------- #


def test_symlink_checked_against_target_directory(machine, alice_task, policy, shared):
    # a link in an open directory pointing into the protected one
    machine.kcall_x(alice_task, "mkdir", "/home/alice/open", 0o777)
    policy.write_acl("/home/alice/open", Acl.for_owner(GEORGE))
    machine.kcall_x(
        alice_task, "symlink", f"{shared}/data.txt", "/home/alice/open/alias"
    )
    # George holds rwlxa on /open but only rl on /shared: write via the
    # alias must be judged by the *target's* ACL
    assert not policy.check(GEORGE, "/home/alice/open/alias", "w").allowed
    assert policy.check(GEORGE, "/home/alice/open/alias", "r").allowed


def test_nofollow_checks_link_itself(machine, alice_task, policy, shared):
    machine.kcall_x(alice_task, "mkdir", "/home/alice/open", 0o777)
    policy.write_acl("/home/alice/open", Acl.for_owner(GEORGE))
    machine.kcall_x(
        alice_task, "symlink", f"{shared}/data.txt", "/home/alice/open/alias"
    )
    # lstat-style access is governed by the link's own directory
    assert policy.check(GEORGE, "/home/alice/open/alias", "l", follow=False).allowed


# -- hard links ------------------------------------------------------------ #


def test_hard_link_requires_read_on_target(machine, alice_task, policy, shared):
    machine.kcall_x(alice_task, "mkdir", "/home/alice/mine", 0o777)
    policy.write_acl("/home/alice/mine", Acl.for_owner("/O=Else/CN=Eve"))
    with pytest.raises(KernelError) as info:
        policy.check_hard_link(
            "/O=Else/CN=Eve", f"{shared}/data.txt", "/home/alice/mine/sneaky"
        )
    assert info.value.errno is Errno.EACCES


def test_hard_link_allowed_with_rights(policy, shared, machine, alice_task):
    policy.check_hard_link(FRED, f"{shared}/data.txt", f"{shared}/second")


def test_hard_link_requires_write_in_destination(policy, shared):
    with pytest.raises(KernelError):
        # George can read the target but holds no w anywhere
        policy.check_hard_link(GEORGE, f"{shared}/data.txt", f"{shared}/copy")


# -- mkdir: inheritance and reserve ------------------------------------------ #


def test_mkdir_with_w_inherits_parent_acl(policy, shared):
    res, acl = policy.plan_mkdir(FRED, f"{shared}/newdir")
    assert not res.exists
    assert acl.rights_for(GEORGE).has_all("rl")  # inherited wildcard entry
    assert acl.rights_for(FRED).has_all("rwlxa")


def test_mkdir_with_reserve_gets_fresh_acl(machine, alice_task, policy):
    machine.kcall_x(alice_task, "mkdir", "/home/alice/pub", 0o755)
    acl = Acl()
    acl.set_entry("/O=X/*", Rights.parse("v(rwlax)"))
    policy.write_acl("/home/alice/pub", acl)
    _res, new_acl = policy.plan_mkdir(FRED, "/home/alice/pub/work")
    assert new_acl.subjects() == [FRED]
    assert new_acl.rights_for(FRED).has_all("rwlxa")
    assert new_acl.rights_for(GEORGE).is_empty


def test_mkdir_reserve_grants_only_parenthesized(machine, alice_task, policy):
    machine.kcall_x(alice_task, "mkdir", "/home/alice/pub", 0o755)
    acl = Acl()
    acl.set_entry(FRED, Rights.parse("v(rl)"))
    policy.write_acl("/home/alice/pub", acl)
    _res, new_acl = policy.plan_mkdir(FRED, "/home/alice/pub/d")
    assert str(new_acl.rights_for(FRED)) == "rl"


def test_mkdir_without_w_or_v_denied(machine, alice_task, policy, shared):
    with pytest.raises(KernelError) as info:
        policy.plan_mkdir(GEORGE, f"{shared}/blocked")
    assert info.value.errno is Errno.EACCES


def test_mkdir_existing_is_eexist(policy, shared, machine, alice_task):
    machine.kcall_x(alice_task, "mkdir", f"{shared}/sub", 0o755)
    with pytest.raises(KernelError) as info:
        policy.plan_mkdir(FRED, f"{shared}/sub")
    assert info.value.errno is Errno.EEXIST


def test_mkdir_in_unacled_world_writable_starts_fresh_domain(
    machine, alice_task, policy
):
    _res, acl = policy.plan_mkdir(FRED, "/tmp/fredspace")
    assert acl.rights_for(FRED).has_all("rwlxa")


# -- rmdir: parent w OR own w --------------------------------------------------- #


def test_remove_dir_by_parent_right(policy, shared, machine, alice_task):
    machine.kcall_x(alice_task, "mkdir", f"{shared}/sub", 0o755)
    assert policy.check_remove_dir(FRED, f"{shared}/sub").allowed


def test_remove_dir_by_own_right(machine, alice_task, policy):
    # reserve-created directory: w inside, nothing in the parent
    machine.kcall_x(alice_task, "mkdir", "/home/alice/pub", 0o755)
    parent_acl = Acl()
    parent_acl.set_entry(FRED, Rights.parse("v(rwlax)"))
    policy.write_acl("/home/alice/pub", parent_acl)
    machine.kcall_x(alice_task, "mkdir", "/home/alice/pub/work", 0o755)
    policy.write_acl("/home/alice/pub/work", Acl.for_owner(FRED))
    assert policy.check_remove_dir(FRED, "/home/alice/pub/work").allowed
    assert not policy.check_remove_dir(GEORGE, "/home/alice/pub/work").allowed


# -- administration ---------------------------------------------------------- #


def test_require_admin(policy, shared):
    policy.require_admin(FRED, shared)
    with pytest.raises(KernelError):
        policy.require_admin(GEORGE, shared)


def test_require_admin_without_acl_denied(policy):
    with pytest.raises(KernelError):
        policy.require_admin(FRED, "/home/alice")


# -- caching ------------------------------------------------------------ #


def test_cache_avoids_reread_cost(machine, alice_task, shared):
    policy = AclPolicy(machine, alice_task, cache_enabled=True)
    policy.acl_of(shared)
    before = machine.clock.now_ns
    policy.acl_of(shared)
    assert machine.clock.now_ns == before  # cache hit: free


def test_cache_disabled_rereads(machine, alice_task, shared):
    policy = AclPolicy(machine, alice_task, cache_enabled=False)
    policy.acl_of(shared)
    before = machine.clock.now_ns
    policy.acl_of(shared)
    assert machine.clock.now_ns > before


def test_write_acl_invalidates_cache(policy, shared):
    assert policy.acl_of(shared).rights_for(GEORGE).has("r")
    acl = policy.acl_of(shared).copy()
    acl.set_entry("/O=X/*", Rights.none())
    policy.write_acl(shared, acl)
    assert not policy.acl_of(shared).rights_for(GEORGE).has("r")


def test_exists_helper(policy, shared):
    assert policy.exists(f"{shared}/data.txt")
    assert not policy.exists(f"{shared}/ghost")
    assert not policy.exists("/no/such/dir/file")


def test_acl_file_name_is_dotfile():
    assert ACL_FILE_NAME.startswith(".")
