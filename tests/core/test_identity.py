"""Identity strings, principals, and wildcard matching."""

import pytest

from repro.core.identity import (
    IdentityError,
    Principal,
    identity_matches,
    is_pattern,
    mangle_for_path,
    validate_identity,
)


# -- validation ------------------------------------------------------------ #


@pytest.mark.parametrize(
    "good",
    [
        "Freddy",
        "/O=UnivNowhere/CN=Fred",
        "globus:/O=UnivNowhere/CN=Fred",
        "kerberos:fred@nowhere.edu",
        "Anonymous429",
        "MyFriend",
    ],
)
def test_paper_examples_are_valid(good):
    assert validate_identity(good) == good


@pytest.mark.parametrize("bad", ["", "has space", "tab\there", "nl\n", "a b"])
def test_whitespace_and_empty_rejected(bad):
    with pytest.raises(IdentityError):
        validate_identity(bad)


# -- matching ------------------------------------------------------------ #


def test_exact_match():
    assert identity_matches("/O=X/CN=Fred", "/O=X/CN=Fred")
    assert not identity_matches("/O=X/CN=Fred", "/O=X/CN=Freda")


def test_paper_wildcard_example():
    # "/O=UnivNowhere/* ... allows any user at /O=UnivNowhere/"
    assert identity_matches("/O=UnivNowhere/*", "/O=UnivNowhere/CN=Fred")
    assert not identity_matches("/O=UnivNowhere/*", "/O=NotreDame/CN=Heidi")


def test_hostname_wildcard_example():
    assert identity_matches("hostname:*.nowhere.edu", "hostname:laptop.cs.nowhere.edu")
    assert not identity_matches("hostname:*.nowhere.edu", "hostname:evil.example.com")


def test_star_crosses_slashes():
    assert identity_matches("globus:*", "globus:/O=A/CN=B")


def test_question_mark_single_char():
    assert identity_matches("grid?", "grid7")
    assert not identity_matches("grid?", "grid77")


def test_match_is_anchored():
    assert not identity_matches("Fred", "AFredB")
    assert not identity_matches("*.edu", "x.edu.com")


def test_match_is_case_sensitive():
    assert not identity_matches("/O=X/CN=Fred", "/o=x/cn=fred")


def test_regex_metacharacters_are_literal():
    assert identity_matches("a.b", "a.b")
    assert not identity_matches("a.b", "axb")  # '.' is NOT a regex dot
    assert identity_matches("a+b", "a+b")
    assert not identity_matches("a+b", "aab")


def test_is_pattern():
    assert is_pattern("/O=X/*")
    assert is_pattern("grid?")
    assert not is_pattern("/O=X/CN=Fred")


# -- principals ------------------------------------------------------------ #


def test_principal_roundtrip():
    p = Principal.parse("globus:/O=UnivNowhere/CN=Fred")
    assert p.method == "globus"
    assert p.name == "/O=UnivNowhere/CN=Fred"
    assert str(p) == "globus:/O=UnivNowhere/CN=Fred"


def test_principal_name_may_contain_colons():
    p = Principal.parse("kerberos:fred@nowhere.edu")
    assert p.method == "kerberos"
    assert p.name == "fred@nowhere.edu"


@pytest.mark.parametrize("bad", ["nomethod", ":noname", "method:", ""])
def test_bad_principal_strings(bad):
    with pytest.raises(IdentityError):
        Principal.parse(bad)


def test_principal_matches_patterns():
    p = Principal("globus", "/O=UnivNowhere/CN=Fred")
    assert p.matches("globus:/O=UnivNowhere/*")
    assert not p.matches("kerberos:*")


# -- path mangling ------------------------------------------------------------ #


def test_mangle_is_single_component():
    mangled = mangle_for_path("globus:/O=UnivNowhere/CN=Fred")
    assert "/" not in mangled
    assert ":" not in mangled


def test_mangle_injective_for_lookalikes():
    # '/' and ':' must not collapse to the same character
    assert mangle_for_path("a/b") != mangle_for_path("a:b")
    assert mangle_for_path("a_b") != mangle_for_path("a/b")


def test_mangle_plain_names_stay_readable():
    assert mangle_for_path("Freddy") == "Freddy"
