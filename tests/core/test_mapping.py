"""Figure 1: the identity-mapping methods, measured behaviourally."""

import pytest

from repro.core.mapping import (
    AccountPool,
    AnonymousAccounts,
    GroupAccounts,
    IdentityBoxMethod,
    METHOD_CLASSES,
    NeedsAdministrator,
    OWNER_SECRET,
    PrivateAccounts,
    Site,
    SingleAccount,
    UntrustedAccount,
    evaluate_method,
    group_of,
    render_table,
)

FRED = "/O=UnivNowhere/CN=Fred"
HEIDI = "/O=NotreDame/CN=Heidi"


@pytest.fixture
def site():
    return Site.build()


# -- individual method behaviour ------------------------------------------- #


def test_single_account_everyone_is_siteop(site):
    method = SingleAccount(site)
    s1 = method.admit(FRED)
    s2 = method.admit(HEIDI)
    assert s1.cred.uid == s2.cred.uid == site.operator.uid


def test_single_account_owner_unprotected(site):
    method = SingleAccount(site)
    session = method.admit(FRED)
    assert session.read_file(OWNER_SECRET) is not None


def test_untrusted_account_is_nobody(site):
    method = UntrustedAccount(site)
    session = method.admit(FRED)
    assert session.cred.username == "nobody"
    assert session.read_file(OWNER_SECRET) is None
    assert session.write_file("scratch", b"x")


def test_private_accounts_need_admin_first(site):
    method = PrivateAccounts(site)
    with pytest.raises(NeedsAdministrator):
        method.admit(FRED)
    method.administer(FRED)
    session = method.admit(FRED)
    assert session.cred.username.startswith("grid_u")
    assert site.manual_admin_actions == 1


def test_private_accounts_stable_across_sessions(site):
    method = PrivateAccounts(site)
    method.administer(FRED)
    s1 = method.admit(FRED)
    s2 = method.admit(FRED)
    assert s1.cred.uid == s2.cred.uid


def test_group_of_extracts_vo():
    assert group_of("/O=CMS/CN=alice") == "/O=CMS"
    assert group_of("plainname") == "plainname"


def test_group_accounts_share_within_vo(site):
    method = GroupAccounts(site)
    method.administer(FRED)
    fred = method.admit(FRED)
    george = method.admit("/O=UnivNowhere/CN=George")
    assert fred.cred.uid == george.cred.uid
    assert site.manual_admin_actions == 1  # one action for the whole VO


def test_group_accounts_isolate_across_vos(site):
    method = GroupAccounts(site)
    method.administer(FRED)
    method.administer(HEIDI)
    fred = method.admit(FRED)
    heidi = method.admit(HEIDI)
    assert fred.cred.uid != heidi.cred.uid


def test_anonymous_accounts_fresh_every_time(site):
    method = AnonymousAccounts(site)
    s1 = method.admit(FRED)
    uid1 = s1.cred.uid
    s1.write_file("data", b"x")
    s1.logout()
    s2 = method.admit(FRED)
    assert s2.cred.uid != uid1
    assert s2.read_file(s2.path_of("data")) is None  # no return
    assert site.manual_admin_actions == 0  # automated, no burden


def test_pool_rotates_accounts(site):
    method = AccountPool(site, pool_size=3)
    s1 = method.admit(FRED)
    first = s1.cred.username
    s1.logout()
    s2 = method.admit(FRED)
    assert s2.cred.username != first  # grid9 today, grid33 tomorrow
    assert site.manual_admin_actions == 1  # pool provisioning only


def test_pool_wipes_recycled_homes(site):
    method = AccountPool(site, pool_size=1)
    s1 = method.admit(FRED)
    s1.write_file("leftover", b"secret")
    s1.logout()
    s2 = method.admit(HEIDI)  # gets the same recycled account
    assert s2.cred.username == s1.cred.username
    assert s2.read_file(s2.path_of("leftover")) is None


def test_pool_exhaustion(site):
    method = AccountPool(site, pool_size=1)
    method.admit(FRED)
    from repro.kernel.errno import KernelError

    with pytest.raises(KernelError):
        method.admit(HEIDI)


def test_identity_box_sharing_by_grid_name(site):
    method = IdentityBoxMethod(site)
    fred = method.admit(FRED)
    heidi = method.admit(HEIDI)
    assert fred.write_file("shared.txt", b"hello heidi")
    assert heidi.read_file(fred.path_of("shared.txt")) is None  # before grant
    assert fred.grant(HEIDI)
    assert heidi.read_file(fred.path_of("shared.txt")) == b"hello heidi"


def test_identity_box_no_root_anywhere(site):
    method = IdentityBoxMethod(site)
    session = method.admit(FRED)
    assert session.write_file("f", b"x")
    assert site.manual_admin_actions == 0
    assert site.machine.users.admin_actions == 1  # only siteop's own account


# -- the full evaluation ---------------------------------------------------- #


def test_method_class_roster_matches_figure():
    assert [cls.name for cls in METHOD_CLASSES] == [
        "Single",
        "Untrusted",
        "Private",
        "Group",
        "Anonymous",
        "Pool",
        "IdentityBox",
    ]


@pytest.mark.parametrize(
    "cls,expected",
    [
        (SingleAccount, ("-", "no", "no", "yes", "yes", "-")),
        (UntrustedAccount, ("root", "yes", "no", "yes", "yes", "-")),
        (PrivateAccounts, ("root", "yes", "yes", "no", "yes", "per user")),
        (GroupAccounts, ("root", "yes", "fixed", "fixed", "yes", "per group")),
        (AnonymousAccounts, ("root", "yes", "yes", "no", "no", "-")),
        (AccountPool, ("root", "yes", "yes", "no", "no", "per pool")),
        (IdentityBoxMethod, ("-", "yes", "yes", "yes", "yes", "-")),
    ],
)
def test_figure1_row(cls, expected):
    """Every cell of Figure 1, measured."""
    report = evaluate_method(cls)
    assert (
        report.required_privilege,
        report.protects_owner,
        report.allows_privacy,
        report.allows_sharing,
        report.allows_return,
        report.admin_burden,
    ) == expected


def test_render_table_layout():
    report = evaluate_method(SingleAccount)
    text = render_table([report])
    assert "Account Type" in text
    assert "Single" in text
