"""The shared operation pipeline: registry, interceptor chain, both surfaces.

The tentpole claim of the refactor is that one enforcement stack fronts
both entry surfaces.  These tests exercise the pipeline in isolation
(registration rules, ordering, short-circuiting) and then prove the
unification: a single counting interceptor added to each surface's
pipeline observes a boxed ``open`` syscall *and* a Chirp ``open`` RPC.
"""

import pytest

from repro.chirp import ChirpClient, ChirpError, ChirpServer, HostnameAuthenticator
from repro.core import Acl, Rights
from repro.core.audit import AuditLog
from repro.core.box import IdentityBox
from repro.core.ops import OpRegistry, OpSpec
from repro.core.pipeline import Operation, Pipeline
from repro.kernel.errno import Errno, KernelError, err
from repro.kernel.fdtable import OpenFlags
from repro.net import Cluster
from tests.helpers import run_calls


# -- registry rules ---------------------------------------------------------- #


def test_registry_rejects_duplicate_op_names():
    registry = OpRegistry()
    registry.register(OpSpec("open", lambda op, ctx: None))
    with pytest.raises(ValueError, match="duplicate op 'open'"):
        registry.register(OpSpec("open", lambda op, ctx: None))


def test_registry_lookup_of_unknown_op_raises():
    with pytest.raises(KeyError):
        OpRegistry().get("frobnicate")


# -- interceptor chain mechanics --------------------------------------------- #


def _tap(name, log):
    def interceptor(op, ctx, proceed):
        log.append(f"{name}:enter")
        result = proceed()
        log.append(f"{name}:exit")
        return result

    return interceptor


def test_interceptors_run_in_declared_order():
    log = []
    registry = OpRegistry()
    registry.register(OpSpec("noop", lambda op, ctx: log.append("handler")))
    pipeline = Pipeline(registry, [_tap("outer", log), _tap("inner", log)])
    pipeline.run(Operation(name="noop", surface="test"), ctx=None)
    assert log == ["outer:enter", "inner:enter", "handler", "inner:exit", "outer:exit"]


def test_add_interceptor_defaults_to_outermost():
    log = []
    registry = OpRegistry()
    registry.register(OpSpec("noop", lambda op, ctx: None))
    pipeline = Pipeline(registry, [_tap("existing", log)])
    pipeline.add_interceptor(_tap("added", log))
    pipeline.run(Operation(name="noop", surface="test"), ctx=None)
    assert log[:2] == ["added:enter", "existing:enter"]


def test_denying_interceptor_short_circuits_before_handler():
    ran = []

    def denying_monitor(op, ctx, proceed):
        raise err(Errno.EACCES, "monitor says no")

    registry = OpRegistry()
    registry.register(OpSpec("write", lambda op, ctx: ran.append(op.name)))
    pipeline = Pipeline(registry, [denying_monitor])
    with pytest.raises(KernelError) as excinfo:
        pipeline.run(Operation(name="write", surface="test"), ctx=None)
    assert excinfo.value.errno is Errno.EACCES
    assert ran == []  # the handler never executed


# -- counter semantics match the pre-refactor surfaces ----------------------- #


def test_supervisor_denial_and_syscall_counters(machine, alice, alice_task, box):
    machine.write_file(alice_task, "/home/alice/secret", b"s", mode=0o600)
    results = run_calls(
        [("open", "ok.txt", OpenFlags.O_WRONLY | OpenFlags.O_CREAT, 0o644),
         ("open", "/home/alice/secret", OpenFlags.O_RDONLY)],
        machine=machine,
        box=box,
    )
    assert results[0] >= 3  # the permitted open yielded a real fd
    assert results[1] == -int(Errno.EACCES)
    assert box.supervisor.syscalls_handled >= 2
    assert box.supervisor.denials == 1


def _hostname_server():
    cluster = Cluster()
    cluster.add_machine("srv")
    cluster.add_machine("cli")
    machine = cluster.machine("srv")
    owner = machine.add_user("op")
    server = ChirpServer(machine, owner, network=cluster.network)
    acl = Acl()
    acl.set_entry("hostname:cli", Rights.parse("rwl"))
    server.set_root_acl(acl)
    server.serve()
    client = ChirpClient.connect(cluster.network, "cli", "srv")
    client.authenticate([HostnameAuthenticator()])
    return server, client


def test_server_stats_count_denials():
    server, client = _hostname_server()
    client.put(b"fine", "/allowed.txt")
    with pytest.raises(ChirpError) as excinfo:
        client.setacl("/", "hostname:cli", "rwlxa")  # no 'a' right granted
    assert excinfo.value.errno is Errno.EACCES
    assert server.stats.denials == 1
    assert server.stats.ops >= 4  # auth counts, put is open+pwrite+close


def test_unauthenticated_op_counts_as_denial():
    server, client = _hostname_server()
    raw = ChirpClient.connect(server.network, "cli", "srv")
    with pytest.raises(ChirpError) as excinfo:
        raw.stat("/")
    assert excinfo.value.errno is Errno.EACCES
    assert server.stats.denials >= 1


# -- the unification proof: one interceptor sees both surfaces --------------- #


class CountingInterceptor:
    """Counts every operation flowing through whichever pipeline hosts it."""

    def __init__(self):
        self.seen = []

    def __call__(self, op, ctx, proceed):
        self.seen.append((op.surface, op.name))
        return proceed()


def test_counting_interceptor_fires_on_both_surfaces(machine, alice, box):
    counter = CountingInterceptor()

    # surface 1: a boxed open trapped by the supervisor
    box.supervisor.pipeline.add_interceptor(counter)
    run_calls(
        [("open", "note.txt", OpenFlags.O_WRONLY | OpenFlags.O_CREAT, 0o644)],
        machine=machine,
        box=box,
    )
    assert ("syscall", "open") in counter.seen

    # surface 2: a Chirp open RPC on a different machine entirely
    server, client = _hostname_server()
    server.pipeline.add_interceptor(counter)
    fd = client.open("/remote.txt", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
    client.close_fd(fd)
    assert ("chirp", "open") in counter.seen


# -- audit flows through the shared sink ------------------------------------- #


def test_denied_syscall_is_audited_through_pipeline(machine, alice, alice_task):
    machine.write_file(alice_task, "/home/alice/secret", b"s", mode=0o600)
    audit = AuditLog()
    box = IdentityBox(machine, alice, "Visitor", audit=audit)
    run_calls(
        [("open", "/home/alice/secret", OpenFlags.O_RDONLY)],
        machine=machine,
        box=box,
    )
    denied = audit.denials()
    assert denied and denied[0].operation == "check:r"
    assert denied[0].identity == "Visitor"


def test_chirp_ops_are_audited_when_log_attached():
    cluster = Cluster()
    cluster.add_machine("srv")
    cluster.add_machine("cli")
    machine = cluster.machine("srv")
    owner = machine.add_user("op")
    audit = AuditLog()
    server = ChirpServer(machine, owner, network=cluster.network, audit=audit)
    acl = Acl()
    acl.set_entry("hostname:cli", Rights.parse("rwl"))
    server.set_root_acl(acl)
    server.serve()
    client = ChirpClient.connect(cluster.network, "cli", "srv")
    principal = client.authenticate([HostnameAuthenticator()])
    client.put(b"hi", "/hello.txt")
    checks = [r for r in audit.records if r.operation.startswith("check:")]
    assert checks and all(r.identity == principal for r in checks)
