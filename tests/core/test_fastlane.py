"""The fast lane's interceptors in isolation: ReadCache and IdentityQuota.

The cache's whole correctness story is invalidation — path relations,
governing-directory scope for ``setacl``, descriptor hints, world-epoch
flushes — and the quota's is the EAGAIN-before-any-work contract.  These
tests drive both against a toy registry so every rule is pinned without
a server in the loop.
"""

import pytest

from repro.core.ops import CACHEABLE_OPS, OpRegistry, OpSpec, PathArg
from repro.core.pipeline import (
    BoundPath,
    IdentityQuota,
    Operation,
    Pipeline,
    ReadCache,
    _paths_related,
)
from repro.kernel.errno import Errno, KernelError
from repro.kernel.fdtable import OpenFlags


def read_op(name, sub, identity="fred", **args):
    """A cacheable read op bound to one path."""
    spec = PathArg("path")
    op = Operation(name=name, surface="test", args={"path": sub, **args})
    op.identity = identity
    op.paths = [BoundPath(spec=spec, raw=sub, full=sub, sub=sub)]
    return op


def write_op(name, sub, **args):
    op = read_op(name, sub, **args)
    return op


def run_cached(cache, op, handler):
    return cache(op, None, handler)


# -- path relations ---------------------------------------------------------- #


def test_paths_related_equal_prefix_and_unrelated():
    assert _paths_related("/a/b", "/a/b")
    assert _paths_related("/a/b", "/a")  # parent mutated: child verdict stale
    assert _paths_related("/a", "/a/b")  # child mutated: parent stat stale
    assert not _paths_related("/a/bb", "/a/b")  # sibling with shared prefix
    assert not _paths_related("/x", "/y")


# -- hit/miss mechanics ------------------------------------------------------ #


def test_cache_hit_skips_the_handler_and_copies_the_result():
    cache = ReadCache()
    calls = []
    handler = lambda: calls.append(1) or {"size": 7}
    first = run_cached(cache, read_op("stat", "/f"), handler)
    second = run_cached(cache, read_op("stat", "/f"), handler)
    assert first == second == {"size": 7}
    assert len(calls) == 1
    assert (cache.hits, cache.misses) == (1, 1)
    # the hit is a *copy*: a caller mutating its reply must not poison
    # the memoized value
    second["size"] = 999
    assert run_cached(cache, read_op("stat", "/f"), handler) == {"size": 7}


def test_cache_key_is_sensitive_to_identity_op_and_args():
    cache = ReadCache()
    run_cached(cache, read_op("stat", "/f"), lambda: {"v": 1})
    assert cache.misses == 1
    # different identity, op name, or non-path argument: all distinct keys
    run_cached(cache, read_op("stat", "/f", identity="wilma"), lambda: {"v": 2})
    run_cached(cache, read_op("lstat", "/f"), lambda: {"v": 3})
    run_cached(cache, read_op("access", "/f", letters="r"), lambda: {"v": 4})
    run_cached(cache, read_op("access", "/f", letters="w"), lambda: {"v": 5})
    assert cache.misses == 5 and cache.hits == 0


def test_errors_are_never_cached():
    cache = ReadCache()

    def enoent():
        raise KernelError(Errno.ENOENT, "no such file")

    for _ in range(2):
        with pytest.raises(KernelError):
            run_cached(cache, read_op("stat", "/gone"), enoent)
    # ENOENT-then-create must stay visible: the miss path ran twice
    assert cache.hits == 0
    assert run_cached(cache, read_op("stat", "/gone"), lambda: {"v": 1}) == {"v": 1}


def test_unhashable_argument_bypasses_the_cache():
    cache = ReadCache()
    op = read_op("stat", "/f", weird=["not", "hashable"])
    assert run_cached(cache, op, lambda: {"v": 1}) == {"v": 1}
    assert len(cache) == 0 and cache.misses == 0


def test_lru_eviction_respects_capacity():
    cache = ReadCache(capacity=2)
    run_cached(cache, read_op("stat", "/a"), lambda: {"v": 1})
    run_cached(cache, read_op("stat", "/b"), lambda: {"v": 2})
    run_cached(cache, read_op("stat", "/a"), lambda: {"v": 1})  # refresh /a
    run_cached(cache, read_op("stat", "/c"), lambda: {"v": 3})  # evicts /b
    assert len(cache) == 2
    run_cached(cache, read_op("stat", "/b"), lambda: {"v": 2})
    assert cache.misses == 4  # /b was re-fetched


# -- invalidation ------------------------------------------------------------ #


def test_mutation_invalidates_same_ancestor_and_descendant_paths():
    cache = ReadCache()
    for sub in ("/d", "/d/f", "/d/f/g", "/other"):
        run_cached(cache, read_op("stat", sub), lambda: {"p": sub})
    run_cached(cache, write_op("unlink", "/d/f"), lambda: {})
    # /d (ancestor), /d/f (same), /d/f/g (descendant) all dropped
    assert len(cache) == 1
    assert cache.invalidations == 3
    run_cached(cache, read_op("stat", "/other"), lambda: {"p": 0})
    assert cache.hits == 1


def test_mutation_invalidates_even_when_the_handler_fails():
    cache = ReadCache()
    run_cached(cache, read_op("stat", "/d/f"), lambda: {"v": 1})

    def boom():
        raise KernelError(Errno.EIO, "partial write then failure")

    with pytest.raises(KernelError):
        run_cached(cache, write_op("truncate", "/d/f"), boom)
    assert len(cache) == 0


def test_readonly_open_does_not_invalidate_but_writable_open_does():
    cache = ReadCache()
    run_cached(cache, read_op("stat", "/f"), lambda: {"v": 1})
    ro = write_op("open", "/f", flags=int(OpenFlags.O_RDONLY))
    run_cached(cache, ro, lambda: {"fd": 3})
    assert len(cache) == 1
    wr = write_op("open", "/f", flags=int(OpenFlags.O_WRONLY))
    run_cached(cache, wr, lambda: {"fd": 4})
    assert len(cache) == 0


def test_setacl_invalidates_from_the_governing_directory_down():
    cache = ReadCache()
    for sub in ("/d", "/d/f", "/d/g", "/e"):
        run_cached(cache, read_op("getacl", sub), lambda: {"acl": sub})
    # setacl on the *file* /d/f: the monitor resolves the governing dir
    # /d into scratch, so every verdict under /d is dropped
    op = write_op("setacl", "/d/f")
    op.scratch["acl_dir"] = "/d"
    run_cached(cache, op, lambda: {})
    assert len(cache) == 1  # only /e survives


def test_fd_write_invalidates_via_the_scratch_hint():
    cache = ReadCache()
    run_cached(cache, read_op("stat", "/d/f"), lambda: {"v": 1})
    run_cached(cache, read_op("stat", "/e"), lambda: {"v": 2})
    op = Operation(name="pwrite", surface="test", args={"fd": 3})
    op.identity = "fred"
    op.scratch["fastlane_paths"] = ["/d/f"]
    run_cached(cache, op, lambda: {"count": 4})
    assert len(cache) == 1  # /e survives, /d/f dropped


def test_fd_write_with_unknown_path_flushes_everything():
    cache = ReadCache()
    run_cached(cache, read_op("stat", "/a"), lambda: {"v": 1})
    run_cached(cache, read_op("stat", "/b"), lambda: {"v": 2})
    op = Operation(name="pwrite", surface="test", args={"fd": 3})
    op.identity = "fred"
    op.scratch["fastlane_paths"] = [None]  # the surface lost track
    run_cached(cache, op, lambda: {"count": 4})
    assert len(cache) == 0 and cache.flushes == 1


def test_exec_flushes_everything():
    cache = ReadCache()
    run_cached(cache, read_op("stat", "/unrelated"), lambda: {"v": 1})
    run_cached(cache, write_op("exec", "/bin/sim"), lambda: {"status": 0})
    assert len(cache) == 0 and cache.flushes == 1


def test_epoch_change_flushes_the_cache():
    epoch = [1]
    cache = ReadCache(epoch_source=lambda: epoch[0])
    run_cached(cache, read_op("stat", "/f"), lambda: {"v": 1})
    run_cached(cache, read_op("stat", "/f"), lambda: {"v": 1})
    assert cache.hits == 1
    epoch[0] += 1  # the world was restored out from under us
    run_cached(cache, read_op("stat", "/f"), lambda: {"v": 2})
    assert cache.flushes == 1 and cache.misses == 2


def test_cacheable_set_matches_ops_declaration():
    assert "stat" in CACHEABLE_OPS and "getacl" in CACHEABLE_OPS
    assert "open" not in CACHEABLE_OPS and "setacl" not in CACHEABLE_OPS


# -- per-identity quota ------------------------------------------------------ #


class FakeClock:
    def __init__(self):
        self.now_ns = 0

    def advance(self, ns):
        self.now_ns += ns


def quota_op(name="stat", identity="fred"):
    op = Operation(name=name, surface="test")
    op.identity = identity
    op.spec = OpSpec(name, lambda op, ctx: None)
    return op


def test_quota_rejects_past_burst_with_eagain_and_the_retry_contract():
    clock = FakeClock()
    quota = IdentityQuota(rate_per_s=2.0, burst=3, clock=clock)
    for _ in range(3):
        assert quota(quota_op(), None, lambda: "ok") == "ok"
    with pytest.raises(KernelError) as exc_info:
        quota(quota_op(), None, lambda: "ok")
    assert exc_info.value.errno is Errno.EAGAIN
    assert "quota exceeded for fred" in str(exc_info.value)
    assert quota.stats.rejected == 1
    # the contract: backing off (simulated time passing) refills the
    # bucket, so a retrying client gets through
    clock.advance(500_000_000)  # 0.5s at 2 tokens/s -> one token back
    assert quota(quota_op(), None, lambda: "ok") == "ok"


def test_quota_meters_each_identity_separately():
    clock = FakeClock()
    quota = IdentityQuota(rate_per_s=1.0, burst=1, clock=clock)
    assert quota(quota_op(identity="fred"), None, lambda: "ok") == "ok"
    with pytest.raises(KernelError):
        quota(quota_op(identity="fred"), None, lambda: "ok")
    # wilma's bucket is untouched by fred's exhaustion
    assert quota(quota_op(identity="wilma"), None, lambda: "ok") == "ok"
    assert quota.tokens("wilma") < 1.0 <= quota.tokens("heidi")


def test_quota_rejection_spends_no_handler_work():
    clock = FakeClock()
    quota = IdentityQuota(rate_per_s=1.0, burst=1, clock=clock)
    quota(quota_op(), None, lambda: "ok")
    ran = []
    with pytest.raises(KernelError):
        quota(quota_op(), None, lambda: ran.append(1))
    assert not ran


def test_quota_exempts_pre_auth_ops():
    clock = FakeClock()
    quota = IdentityQuota(rate_per_s=1.0, burst=1, clock=clock)
    op = quota_op(name="auth")
    op.spec = OpSpec("auth", lambda op, ctx: None, pre_auth=True)
    for _ in range(5):  # far past burst, never rejected
        assert quota(op, None, lambda: "ok") == "ok"
    assert quota.stats.rejected == 0


def test_quota_snapshot_reports_exhausted_identities():
    clock = FakeClock()
    quota = IdentityQuota(rate_per_s=1.0, burst=1, clock=clock)
    quota(quota_op(identity="fred"), None, lambda: "ok")
    snap = quota.snapshot()
    assert snap["exhausted"] == ["fred"]
    assert snap["admitted"] == 1 and snap["burst"] == 1


# -- pipeline integration ---------------------------------------------------- #


def test_pipeline_stats_reports_the_fastlane_section():
    registry = OpRegistry()
    registry.register(OpSpec("noop", lambda op, ctx: None))
    cache = ReadCache()
    quota = IdentityQuota(rate_per_s=1.0, burst=8, clock=FakeClock())
    pipeline = Pipeline(registry, [quota, cache], cache=cache, quota=quota)
    pipeline.run(Operation(name="noop", surface="test", identity="fred"), None)
    stats = pipeline.stats()["fastlane"]
    assert stats["cache"]["entries"] == 0
    assert stats["quota"]["admitted"] == 1


def test_plain_pipeline_stats_has_no_fastlane_section():
    registry = OpRegistry()
    registry.register(OpSpec("noop", lambda op, ctx: None))
    assert "fastlane" not in Pipeline(registry).stats()
