"""The telemetry layer: histograms, spans, snapshots, and zero overhead.

The observability tentpole's contract in four parts: bucket math is
exact and deterministic; spans nest (and reparent across a wire trace
id); every snapshot is a detached copy; and attaching telemetry costs
*zero simulated time*, so instrumented runs are byte-identical in the
clock dimension to bare ones.
"""

import pytest

from repro.core.box import IdentityBox
from repro.core.pipeline import CircuitBreaker
from repro.core.telemetry import (
    DEFAULT_BUCKET_EDGES_NS,
    Histogram,
    LatencyStats,
    Telemetry,
    format_trace_parent,
    instrument,
    parse_trace_parent,
)
from repro.kernel.errno import Errno, KernelError, err
from repro.kernel.machine import Machine
from repro.kernel.timing import Clock
from tests.helpers import run_calls


# -- bucket edges ------------------------------------------------------------- #


def test_default_bucket_edges_are_geometric_from_125ns():
    edges = DEFAULT_BUCKET_EDGES_NS
    assert edges[0] == 125
    assert len(edges) == 26
    for prev, cur in zip(edges, edges[1:]):
        assert cur == 2 * prev
    assert edges[-1] > 4_000_000_000  # wide enough for a whole RPC w/ backoff


def test_observation_lands_in_the_inclusive_upper_bound_bucket():
    hist = Histogram()
    hist.observe(125)  # exactly the first edge: bucket 0
    hist.observe(126)  # just past it: bucket 1
    hist.observe(250)  # exactly the second edge: bucket 1
    assert hist.counts[0] == 1
    assert hist.counts[1] == 2


def test_overflow_bucket_catches_values_past_the_last_edge():
    hist = Histogram()
    hist.observe(DEFAULT_BUCKET_EDGES_NS[-1] + 1)
    assert hist.counts[-1] == 1
    assert len(hist.counts) == len(DEFAULT_BUCKET_EDGES_NS) + 1


# -- moments and percentiles -------------------------------------------------- #


def test_constant_stream_percentiles_are_exact():
    hist = Histogram()
    for _ in range(1000):
        hist.observe(14_070)  # a boxed getpid in the cost model
    assert hist.mean == 14_070.0
    for q in (50, 90, 99, 100):
        assert hist.percentile(q) == 14_070.0


def test_mixed_stream_percentiles_are_bounded_and_monotone():
    hist = Histogram()
    for value in (1_000, 2_000, 4_000, 400_000):
        for _ in range(25):
            hist.observe(value)
    quantiles = [hist.percentile(q) for q in (50, 90, 99)]
    assert quantiles == sorted(quantiles)
    for q in quantiles:
        assert hist.min <= q <= hist.max
    assert hist.percentile(99) > hist.percentile(50)


def test_empty_histogram_is_all_zero():
    hist = Histogram()
    assert hist.count == 0 and hist.mean == 0.0 and hist.percentile(50) == 0.0


def test_merge_folds_counts_and_rejects_mismatched_edges():
    a, b = Histogram(), Histogram()
    a.observe(100)
    b.observe(1_000_000)
    a.merge(b)
    assert a.count == 2 and a.min == 100 and a.max == 1_000_000
    alien = Histogram(edges=(1, 2, 3))
    alien.observe(2)
    with pytest.raises(ValueError):
        a.merge(alien)


def test_latency_stats_merges_histograms_into_microseconds():
    open_hist, close_hist = Histogram(), Histogram()
    for _ in range(10):
        open_hist.observe(24_000)  # 24 us
        close_hist.observe(26_000)  # 26 us
    stats = LatencyStats.from_histograms(open_hist, close_hist)
    assert stats.count == 20
    assert stats.mean_us == pytest.approx(25.0)
    assert stats.p50_us <= stats.p99_us
    assert LatencyStats.from_histograms(Histogram()).count == 0


# -- counters, labels, spans -------------------------------------------------- #


def test_counters_are_per_label_set_with_a_cross_label_total():
    t = Telemetry()
    t.counter_inc("ops", op="open")
    t.counter_inc("ops", op="open")
    t.counter_inc("ops", op="close")
    assert t.counter("ops", op="open") == 2
    assert t.counter("ops", op="close") == 1
    assert t.counter("ops", op="stat") == 0
    assert t.counter_total("ops") == 3


def test_spans_nest_through_the_active_stack():
    clock = Clock()
    t = Telemetry(clock)
    outer = t.start_span("rpc:exec")
    clock.advance(1_000, "test")
    inner = t.start_span("syscall:open")
    clock.advance(500, "test")
    t.end_span(inner)
    t.end_span(outer)
    assert inner.trace_id == outer.trace_id
    assert inner.parent_id == outer.span_id
    assert outer.parent_id == ""
    assert inner.duration_ns == 500
    assert outer.duration_ns == 1_500
    assert [s.name for s in t.spans_in_trace(outer.trace_id)] == [
        "syscall:open",
        "rpc:exec",
    ]


def test_wire_trace_parent_reparents_across_telemetry_instances():
    client, server = Telemetry(), Telemetry()
    rpc = client.start_span("rpc:exec")
    wire = format_trace_parent(rpc)
    assert parse_trace_parent(wire) == (rpc.trace_id, rpc.span_id)
    remote = server.start_span("chirp:exec", trace_parent=wire)
    server.end_span(remote)
    client.end_span(rpc)
    assert remote.trace_id == rpc.trace_id
    assert remote.parent_id == rpc.span_id
    assert remote.span_id != rpc.span_id  # ids are process-unique


# -- snapshots are detached copies -------------------------------------------- #


def test_mutating_a_telemetry_snapshot_leaves_live_state_intact():
    t = Telemetry(Clock())
    t.counter_inc("ops", op="open")
    t.observe("lat", 1_000, op="open")
    t.end_span(t.start_span("syscall:open"))
    snap = t.snapshot()
    snap["counters"].clear()
    snap["histograms"]["lat{op=open}"]["buckets"].clear()
    snap["spans"].clear()
    assert t.counter("ops", op="open") == 1
    assert t.histogram("lat", op="open").count == 1
    assert len(t.spans) == 1
    assert t.snapshot()["counters"] == {"ops{op=open}": 1}


def test_mutating_a_breaker_snapshot_leaves_the_breaker_intact():
    clock = Clock()
    breaker = CircuitBreaker(clock=clock, threshold=1, cooldown_ns=10**9)
    op_ctx = type("Op", (), {"identity": "Visitor", "name": "open"})()

    def failing():
        raise err(Errno.ENOENT, "no such file")

    with pytest.raises(KernelError):
        breaker(op_ctx, None, failing)
    before = breaker.snapshot()
    assert before["open"] == ["Visitor"] and before["trips"] == 1
    # vandalize the snapshot every way a caller could
    before["open"].clear()
    before["trips"] = 0
    before["failures"] = -99
    after = breaker.snapshot()
    assert after["open"] == ["Visitor"]
    assert after["trips"] == 1 and after["failures"] == 1
    assert breaker.is_open("Visitor")


# -- disabled telemetry: records nothing, costs nothing ----------------------- #


def test_disabled_telemetry_records_nothing():
    t = Telemetry(enabled=False)
    t.counter_inc("ops")
    t.gauge_set("depth", 3.0)
    t.observe("lat", 1_000)
    assert t.start_span("x") is None
    t.end_span(None)
    assert not t.counters and not t.gauges and not t.spans
    assert t.histogram("lat").count == 0


def _boxed_clock_ns(telemetry_mode: str) -> tuple[int, Telemetry | None]:
    """Simulated ns for a fixed boxed workload under one telemetry mode."""
    machine = Machine()
    telemetry = None
    if telemetry_mode == "enabled":
        telemetry = instrument(machine)
    elif telemetry_mode == "disabled":
        telemetry = instrument(machine)
        telemetry.enabled = False
    alice = machine.add_user("alice")
    box = IdentityBox(machine, alice, "Visitor")
    from repro.kernel.fdtable import OpenFlags

    run_calls(
        [("open", "f.txt", OpenFlags.O_WRONLY | OpenFlags.O_CREAT, 0o644),
         ("getpid",)],
        machine=machine,
        box=box,
    )
    return machine.clock.now_ns, telemetry


def test_telemetry_adds_zero_simulated_time():
    bare, _ = _boxed_clock_ns("none")
    enabled, enabled_t = _boxed_clock_ns("enabled")
    disabled, disabled_t = _boxed_clock_ns("disabled")
    assert bare == enabled == disabled
    # and the enabled run actually measured the workload...
    assert enabled_t.counter_total("pipeline.ops") > 0
    assert enabled_t.histogram("syscall.latency_ns", op="getpid", mode="traced").count == 1
    # ...while the disabled one stayed empty
    assert disabled_t.counter_total("pipeline.ops") == 0
    assert not disabled_t.spans


def test_fork_detaches_lineage_and_state():
    """A forked Telemetry starts a new root trace with zero recorded state."""
    parent = Telemetry(Clock())
    parent.counter_inc("pipeline.ops", 5)
    outer = parent.start_span("outer")

    child = parent.fork()
    assert child.enabled == parent.enabled
    assert child.counter_total("pipeline.ops") == 0
    assert not child.spans

    # a span opened on the fork roots a fresh trace — it must not nest
    # under the parent's still-open span
    child_span = child.start_span("forked-op")
    assert child_span.trace_id != outer.trace_id
    assert child_span.parent_id == ""
    child.end_span(child_span)
    parent.end_span(outer)
    # recording stays fully separate in both directions
    assert parent.spans_named("forked-op") == []
    assert child.spans_named("outer") == []
