"""Fail-closed behaviour for corrupt ACL files.

A reference monitor that crashes (or, worse, falls back to a *more
permissive* check) when it meets a malformed ``.__acl`` file would hand an
attacker a denial-of-policy primitive.  Corrupt ACLs must read as
deny-everyone.
"""

import pytest

from repro.core.acl import ACL_FILE_NAME
from repro.core.aclfs import AclPolicy
from repro.core.box import IdentityBox
from repro.kernel import Errno
from repro.kernel.vfs import join
from tests.helpers import boxed_read_file, boxed_write_file


@pytest.fixture
def policy(machine, alice_task):
    return AclPolicy(machine, alice_task)


def corrupt(machine, alice_task, dir_path, content=b"not ! a valid acl line"):
    machine.write_file(alice_task, join(dir_path, ACL_FILE_NAME), content)


def test_corrupt_acl_denies_everyone(machine, alice_task, policy):
    machine.kcall_x(alice_task, "mkdir", "/home/alice/d", 0o777)
    corrupt(machine, alice_task, "/home/alice/d")
    acl = policy.acl_of("/home/alice/d")
    assert acl is not None  # present, not "no ACL"
    assert len(acl) == 0
    assert not policy.check("AnyOne", "/home/alice/d", "l").allowed


def test_corrupt_acl_beats_permissive_fallback(machine, alice_task, policy):
    # the directory is world-readable: nobody-fallback would allow 'l',
    # but the (corrupt) ACL governs and denies
    machine.kcall_x(alice_task, "mkdir", "/home/alice/open", 0o777)
    machine.write_file(alice_task, "/home/alice/open/f", b"x", mode=0o644)
    assert policy.check("V", "/home/alice/open/f", "r").allowed
    corrupt(machine, alice_task, "/home/alice/open")
    policy.invalidate("/home/alice/open")
    assert not policy.check("V", "/home/alice/open/f", "r").allowed


def test_binary_garbage_acl(machine, alice_task, policy):
    machine.kcall_x(alice_task, "mkdir", "/home/alice/d", 0o755)
    corrupt(machine, alice_task, "/home/alice/d", b"\x00\xff\xfe binary trash \x80")
    assert not policy.check("V", "/home/alice/d", "l").allowed


def test_supervisor_survives_corrupt_acl(machine, alice, alice_task):
    """A boxed process probing a corrupt-ACL directory gets EACCES, and the
    supervisor (and the rest of the box) keeps working."""
    box = IdentityBox(machine, alice, "Visitor")
    machine.kcall_x(alice_task, "mkdir", "/home/alice/broken", 0o777)
    corrupt(machine, alice_task, "/home/alice/broken")
    machine.write_file(alice_task, "/home/alice/broken/f", b"x", mode=0o644)
    assert boxed_read_file(box, "/home/alice/broken/f") == -Errno.EACCES
    # the box is still fully functional afterwards
    assert boxed_write_file(box, "still-works", b"yes") == 3


def test_owner_can_repair_corrupt_acl(machine, alice_task, policy):
    from repro.core.acl import Acl

    machine.kcall_x(alice_task, "mkdir", "/home/alice/d", 0o755)
    corrupt(machine, alice_task, "/home/alice/d")
    assert not policy.check("V", "/home/alice/d", "l").allowed
    policy.write_acl("/home/alice/d", Acl.for_owner("V"))
    assert policy.check("V", "/home/alice/d", "l").allowed
