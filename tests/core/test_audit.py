"""The forensic audit log (§9)."""

from repro.core.audit import AuditLog, AuditRecord


def rec(log, identity="I", op="check:r", target="/f", allowed=True, t=0):
    log.record(t, identity, op, target, allowed)


def test_records_appended_in_order():
    log = AuditLog()
    rec(log, target="/a")
    rec(log, target="/b")
    assert [r.target for r in log.records] == ["/a", "/b"]
    assert len(log) == 2


def test_disabled_log_records_nothing():
    log = AuditLog(enabled=False)
    rec(log)
    assert len(log) == 0


def test_for_identity_filters():
    log = AuditLog()
    rec(log, identity="A")
    rec(log, identity="B")
    rec(log, identity="A")
    assert len(log.for_identity("A")) == 2


def test_denials():
    log = AuditLog()
    rec(log, allowed=True)
    rec(log, allowed=False, target="/blocked")
    assert [r.target for r in log.denials()] == ["/blocked"]


def test_objects_accessed_dedupes_preserving_order():
    log = AuditLog()
    rec(log, target="/x")
    rec(log, target="/y")
    rec(log, target="/x")
    rec(log, target="/denied", allowed=False)
    assert log.objects_accessed("I") == ["/x", "/y"]


def test_render_contains_verdicts():
    log = AuditLog()
    rec(log, allowed=True, target="/ok")
    rec(log, allowed=False, target="/no")
    text = log.render()
    assert "ALLOW" in text and "DENY" in text
    assert "/ok" in text and "/no" in text


def test_record_timestamps_in_seconds():
    record = AuditRecord(
        time_ns=2_500_000_000, identity="I", operation="o", target="/t", allowed=True
    )
    assert "2.5" in record.render()


def test_records_are_immutable():
    record = AuditRecord(0, "I", "o", "/t", True)
    try:
        record.allowed = False
        raised = False
    except AttributeError:
        raised = True
    assert raised
