"""Rights strings: parsing, the reserve right, algebra."""

import pytest

from repro.core.rights import Rights, RightsError


def test_parse_plain_letters():
    rights = Rights.parse("rwlax")
    assert rights.has_all("rwlax")
    assert rights.reserve is None


def test_parse_subset():
    rights = Rights.parse("rl")
    assert rights.has("r") and rights.has("l")
    assert not rights.has("w") and not rights.has("a") and not rights.has("x")


def test_parse_reserve_only():
    rights = Rights.parse("v(rwlax)")
    assert rights.has("v")
    assert not rights.has("r")
    assert rights.reserve_rights().has_all("rwlax")


def test_parse_mixed_letters_and_reserve():
    rights = Rights.parse("rlxv(rwlax)")
    assert rights.has_all("rlx")
    assert rights.has("v")
    assert rights.reserve_rights().has_all("rwlax")


def test_parse_letters_after_reserve_group():
    rights = Rights.parse("v(rl)wa")
    assert rights.has_all("wa")
    assert rights.reserve == frozenset("rl")


def test_dash_is_empty():
    assert Rights.parse("-").is_empty
    assert Rights.parse("").is_empty


@pytest.mark.parametrize("bad", ["z", "rwz", "v()", "v(rq)", "v(", "r v"])
def test_malformed_rejected(bad):
    with pytest.raises(RightsError):
        Rights.parse(bad)


def test_order_independent_equality():
    assert Rights.parse("rwl") == Rights.parse("lwr")


def test_str_is_canonical_order():
    assert str(Rights.parse("xalwr")) == "rwlxa"
    assert str(Rights.parse("lv(xw)")) == "lv(wx)"
    assert str(Rights.none()) == "-"


def test_roundtrip():
    for text in ("rwlxa", "rl", "v(rwlxa)", "rlxv(rwlxa)", "-"):
        assert str(Rights.parse(str(Rights.parse(text)))) == str(Rights.parse(text))


def test_has_v_means_reserve():
    assert Rights.parse("v(r)").has("v")
    assert not Rights.parse("rwlax").has("v")


def test_has_unknown_letter_raises():
    with pytest.raises(RightsError):
        Rights.parse("r").has("q")


def test_has_all():
    rights = Rights.parse("rwl")
    assert rights.has_all("rw")
    assert rights.has_all("")
    assert not rights.has_all("rwx")


def test_union_merges_flags():
    merged = Rights.parse("rl") | Rights.parse("wa")
    assert merged.has_all("rwla")


def test_union_merges_reserve_sets():
    merged = Rights.parse("v(rl)") | Rights.parse("v(w)")
    assert merged.reserve == frozenset("rlw")


def test_union_keeps_reserve_when_one_side_lacks_it():
    merged = Rights.parse("r") | Rights.parse("v(w)")
    assert merged.has("v")
    assert merged.reserve == frozenset("w")


def test_union_no_reserve_stays_none():
    merged = Rights.parse("r") | Rights.parse("w")
    assert merged.reserve is None


def test_reserve_rights_without_reserve_raises():
    with pytest.raises(RightsError):
        Rights.parse("rwlax").reserve_rights()


def test_of_constructor():
    rights = Rights.of("rw", reserve="rl")
    assert rights.has_all("rw")
    assert rights.reserve == frozenset("rl")


def test_full_and_none():
    assert Rights.full().has_all("rwlxa")
    assert Rights.none().is_empty


def test_programmatic_bad_letters_rejected():
    with pytest.raises(RightsError):
        Rights(flags=frozenset("rq"))
    with pytest.raises(RightsError):
        Rights(flags=frozenset(), reserve=frozenset("z"))
