"""Private /etc/passwd copies (the whoami trick of Figure 2)."""

from repro.core.passwd import (
    create_private_passwd,
    lookup_name_by_uid,
    passwd_entry_for,
    passwd_name_for,
)


def test_entry_format():
    line = passwd_entry_for("Freddy", 1000, 1000, "/tmp/boxes/Freddy")
    fields = line.split(":")
    assert fields[0] == "Freddy"
    assert fields[2] == "1000"
    assert fields[5] == "/tmp/boxes/Freddy"
    assert len(fields) == 7


def test_colons_in_identity_sanitized():
    line = passwd_entry_for("globus:/O=X/CN=F", 1000, 1000, "/h")
    assert len(line.split(":")) == 7
    assert line.split(":")[0] == "globus_/O=X/CN=F"


def test_passwd_name_for_plain_identity_unchanged():
    assert passwd_name_for("Freddy") == "Freddy"


def test_create_private_passwd_prepends_entry(machine, alice, alice_task):
    path = create_private_passwd(
        machine, alice_task, "Freddy", "/tmp/boxes/Freddy", "/tmp/pw"
    )
    text = machine.read_file(alice_task, path).decode()
    first = text.splitlines()[0]
    assert first.startswith("Freddy:x:")
    assert f":{alice.uid}:" in first
    # the original database is still there, below
    assert any(line.startswith("root:x:0:") for line in text.splitlines()[1:])


def test_uid_lookup_first_match_wins(machine, alice, alice_task):
    path = create_private_passwd(
        machine, alice_task, "Freddy", "/tmp/boxes/Freddy", "/tmp/pw"
    )
    text = machine.read_file(alice_task, path).decode()
    # alice's uid now answers to Freddy — the shadowing the paper uses
    assert lookup_name_by_uid(text, alice.uid) == "Freddy"
    assert lookup_name_by_uid(text, 0) == "root"


def test_lookup_unknown_uid_is_none():
    assert lookup_name_by_uid("root:x:0:0:::\n", 555) is None


def test_lookup_skips_malformed_lines():
    assert lookup_name_by_uid("garbage\nroot:x:0:0:::\n", 0) == "root"


def test_real_passwd_untouched(machine, alice, alice_task, root_task):
    before = machine.read_file(root_task, "/etc/passwd")
    create_private_passwd(machine, alice_task, "Freddy", "/h", "/tmp/pw")
    assert machine.read_file(root_task, "/etc/passwd") == before
