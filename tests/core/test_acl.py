"""ACL evaluation, mutation, and serialization."""

import pytest

from repro.core.acl import Acl, AclEntry, AclError
from repro.core.rights import Rights

FRED = "/O=UnivNowhere/CN=Fred"


def paper_acl() -> Acl:
    """The §3 example ACL."""
    return Acl(
        entries=[
            AclEntry(FRED, Rights.parse("rwlxa")),
            AclEntry("/O=UnivNowhere/*", Rights.parse("rl")),
        ]
    )


def test_paper_example_rights():
    acl = paper_acl()
    assert acl.rights_for(FRED).has_all("rwlxa")
    george = "/O=UnivNowhere/CN=George"
    assert acl.rights_for(george).has_all("rl")
    assert not acl.rights_for(george).has("w")


def test_unlisted_identity_gets_nothing():
    acl = paper_acl()
    assert acl.rights_for("/O=Elsewhere/CN=Eve").is_empty
    assert not acl.allows("/O=Elsewhere/CN=Eve", "r")


def test_rights_union_across_matching_entries():
    # Fred matches both his own entry and the wildcard
    acl = Acl(
        entries=[
            AclEntry(FRED, Rights.parse("w")),
            AclEntry("/O=UnivNowhere/*", Rights.parse("rl")),
        ]
    )
    assert acl.rights_for(FRED).has_all("rwl")


def test_allows_requires_every_letter():
    acl = paper_acl()
    assert acl.allows(FRED, "rw")
    assert not acl.allows("/O=UnivNowhere/CN=G", "rw")


def test_set_entry_replaces():
    acl = paper_acl()
    acl.set_entry(FRED, Rights.parse("r"))
    assert str(acl.rights_for(FRED)) == "rl"  # own entry r + wildcard rl
    assert len([e for e in acl if e.subject == FRED]) == 1


def test_set_entry_empty_rights_removes():
    acl = paper_acl()
    acl.set_entry(FRED, Rights.none())
    assert FRED not in acl.subjects()


def test_remove_entry():
    acl = paper_acl()
    acl.remove_entry("/O=UnivNowhere/*")
    assert acl.subjects() == [FRED]


def test_render_parse_roundtrip():
    acl = paper_acl()
    again = Acl.parse(acl.render())
    assert again.subjects() == acl.subjects()
    assert str(again.rights_for(FRED)) == str(acl.rights_for(FRED))


def test_render_format_matches_paper():
    text = paper_acl().render()
    assert "/O=UnivNowhere/CN=Fred rwlxa\n" in text
    assert "/O=UnivNowhere/* rl\n" in text


def test_parse_tolerates_comments_and_blanks():
    acl = Acl.parse("# a comment\n\n/O=X/CN=A rl\n   \n")
    assert acl.subjects() == ["/O=X/CN=A"]


def test_parse_reserve_entries():
    acl = Acl.parse("globus:/O=UnivNowhere/* v(rwlax)\n")
    rights = acl.rights_for("globus:/O=UnivNowhere/CN=Fred")
    assert rights.has("v")
    assert rights.reserve_rights().has_all("rwlax")


@pytest.mark.parametrize(
    "bad",
    ["just-a-subject\n", "subject with too many words rl\n", "/O=X rz\n"],
)
def test_malformed_lines_raise(bad):
    with pytest.raises(AclError):
        Acl.parse(bad)


def test_entry_subject_validation():
    with pytest.raises(AclError):
        AclEntry("has space", Rights.parse("r"))
    with pytest.raises(AclError):
        AclEntry("", Rights.parse("r"))


def test_for_owner():
    acl = Acl.for_owner(FRED)
    assert acl.rights_for(FRED).has_all("rwlxa")
    assert acl.rights_for("someone-else").is_empty


def test_copy_is_independent():
    acl = paper_acl()
    twin = acl.copy()
    twin.set_entry("new-subject", Rights.parse("r"))
    assert "new-subject" not in acl.subjects()


def test_empty_acl_denies_everyone():
    acl = Acl()
    assert acl.rights_for(FRED).is_empty
    assert len(acl) == 0


def test_entry_order_preserved():
    acl = paper_acl()
    assert acl.subjects() == [FRED, "/O=UnivNowhere/*"]
