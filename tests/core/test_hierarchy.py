"""The Figure-6 hierarchical identity namespace."""

import pytest

from repro.core.hierarchy import (
    HierarchicalIdentity,
    HierarchyError,
    IdentityTree,
)


def hid(text: str) -> HierarchicalIdentity:
    return HierarchicalIdentity.parse(text)


def test_parse_and_str_roundtrip():
    node = hid("root:dthain:visitor")
    assert str(node) == "root:dthain:visitor"
    assert node.labels == ("root", "dthain", "visitor")


def test_grid_dn_is_one_label():
    node = hid("root:grid").child("/O=UnivNowhere/CN=Freddy")
    assert node.depth == 3
    assert str(node) == "root:grid:/O=UnivNowhere/CN=Freddy"


@pytest.mark.parametrize("bad", ["", "a::b", "a: b", "root:"])
def test_bad_labels_rejected(bad):
    with pytest.raises(HierarchyError):
        hid(bad)


def test_parent_and_depth():
    node = hid("root:a:b")
    assert node.parent == hid("root:a")
    assert hid("root").parent is None
    assert node.depth == 3


def test_ancestry_is_strict():
    assert hid("root:a").is_ancestor_of(hid("root:a:b"))
    assert hid("root").is_ancestor_of(hid("root:a:b"))
    assert not hid("root:a").is_ancestor_of(hid("root:a"))
    assert not hid("root:a:b").is_ancestor_of(hid("root:a"))
    assert not hid("root:ab").is_ancestor_of(hid("root:a:b"))


def test_may_manage_includes_self():
    assert hid("root:a").may_manage(hid("root:a"))
    assert hid("root:a").may_manage(hid("root:a:b:c"))
    assert not hid("root:a").may_manage(hid("root:b"))


# -- tree operations ---------------------------------------------------------- #


@pytest.fixture
def tree():
    return IdentityTree()


def test_root_preexists(tree):
    assert tree.exists("root")
    assert len(tree) == 1


def test_create_under_self_needs_no_privilege(tree):
    dthain = tree.create(tree.root, tree.root, "dthain")
    visitor = tree.create(dthain, dthain, "visitor")
    assert tree.exists(visitor)
    assert str(visitor) == "root:dthain:visitor"


def test_create_under_sibling_denied(tree):
    a = tree.create(tree.root, tree.root, "a")
    b = tree.create(tree.root, tree.root, "b")
    with pytest.raises(HierarchyError):
        tree.create(a, b, "intrusion")


def test_ancestor_may_create_below_descendant(tree):
    a = tree.create(tree.root, tree.root, "a")
    ab = tree.create(a, a, "b")
    node = tree.create(tree.root, ab, "c")  # root is an ancestor of a:b
    assert str(node) == "root:a:b:c"


def test_duplicate_names_impossible(tree):
    a = tree.create(tree.root, tree.root, "a")
    with pytest.raises(HierarchyError):
        tree.create(tree.root, tree.root, "a")
    tree.create(a, a, "a")  # same label under a different parent is fine


def test_create_under_unregistered_parent_fails(tree):
    ghost = hid("root:ghost")
    with pytest.raises(HierarchyError):
        tree.create(tree.root, ghost, "x")


def test_destroy_subtree(tree):
    a = tree.create(tree.root, tree.root, "a")
    tree.create(a, a, "x")
    tree.create(a, a, "y")
    tree.destroy(tree.root, a)
    assert not tree.exists("root:a")
    assert not tree.exists("root:a:x")
    assert len(tree) == 1


def test_destroy_requires_ancestry(tree):
    a = tree.create(tree.root, tree.root, "a")
    b = tree.create(tree.root, tree.root, "b")
    with pytest.raises(HierarchyError):
        tree.destroy(a, b)
    with pytest.raises(HierarchyError):
        tree.destroy(a, a)  # not your own ancestor


def test_root_indestructible(tree):
    with pytest.raises(HierarchyError):
        tree.destroy(tree.root, tree.root)


def test_signal_rule(tree):
    dthain = tree.create(tree.root, tree.root, "dthain")
    visitor = tree.create(dthain, dthain, "visitor")
    httpd = tree.create(tree.root, tree.root, "httpd")
    assert tree.may_signal(dthain, visitor)  # supervisor -> boxed
    assert tree.may_signal(visitor, visitor)  # same identity
    assert not tree.may_signal(visitor, dthain)  # not upward
    assert not tree.may_signal(httpd, visitor)  # not across


def test_children_of(tree):
    grid = tree.create(tree.root, tree.root, "grid")
    tree.create(grid, grid, "anon5")
    tree.create(grid, grid, "anon2")
    names = [str(c) for c in tree.children_of(grid)]
    assert names == ["root:grid:anon2", "root:grid:anon5"]


def test_get_unknown_raises(tree):
    with pytest.raises(HierarchyError):
        tree.get("root:nobody-here")
