"""The identity box public API: homes, identity, containment basics."""

import pytest

from repro.core.acl import ACL_FILE_NAME
from repro.core.box import IdentityBox, identity_box_run
from repro.core.identity import IdentityError
from repro.kernel import Errno, OpenFlags, Signal
from tests.helpers import boxed_read_file, boxed_write_file, run_calls


def test_box_creates_home_with_owner_acl(box):
    assert box.home == "/tmp/boxes/Visitor"
    acl = box.policy.acl_of(box.home)
    assert acl.rights_for("Visitor").has_all("rwlxa")


def test_box_creates_private_passwd(box, machine):
    text = machine.read_file(box.owner_task, box.passwd_path).decode()
    assert text.splitlines()[0].startswith("Visitor:x:")


def test_get_user_name_returns_identity(machine, box):
    results = run_calls([("get_user_name",)], machine=machine, box=box)
    assert results == ["Visitor"]


def test_get_user_name_outside_box_returns_unix_name(machine, alice):
    results = run_calls([("get_user_name",)], machine=machine, cred=alice)
    assert results == ["alice"]


def test_visitor_works_in_home(machine, box):
    assert boxed_write_file(box, "notes.txt", b"mine") == 4
    assert boxed_read_file(box, "notes.txt") == b"mine"


def test_visitor_denied_outside_home(machine, alice, alice_task, box):
    machine.write_file(alice_task, "/home/alice/secret", b"s", mode=0o600)
    assert boxed_read_file(box, "/home/alice/secret") == -Errno.EACCES


def test_same_identity_returns_to_same_home(machine, alice):
    box1 = IdentityBox(machine, alice, "Freddy")
    boxed_write_file(box1, "keep.txt", b"persistent")
    box2 = IdentityBox(machine, alice, "Freddy")
    assert box2.home == box1.home
    assert boxed_read_file(box2, "keep.txt") == b"persistent"


def test_different_identities_get_distinct_homes(machine, alice):
    a = IdentityBox(machine, alice, "UserA")
    b = IdentityBox(machine, alice, "UserB")
    assert a.home != b.home
    boxed_write_file(a, "private", b"a's data")
    assert boxed_read_file(b, a.home + "/private") == -Errno.EACCES


def test_shared_supervisor_hosts_many_identities(machine, alice):
    a = IdentityBox(machine, alice, "UserA")
    b = IdentityBox(machine, alice, "UserB", supervisor=a.supervisor)
    assert a.supervisor is b.supervisor
    boxed_write_file(a, "fa", b"1")
    boxed_write_file(b, "fb", b"2")
    assert boxed_read_file(b, a.home + "/fa") == -Errno.EACCES


def test_principal_identities_are_valid_box_names(machine, alice):
    box = IdentityBox(machine, alice, "globus:/O=UnivNowhere/CN=Fred")
    assert boxed_write_file(box, "x", b"ok") == 2


def test_invalid_identity_rejected(machine, alice):
    with pytest.raises(IdentityError):
        IdentityBox(machine, alice, "has spaces")


def test_whoami_flow_reports_identity(machine, box):
    def body(proc, args):
        uid = yield proc.sys.getuid()
        fd = yield proc.sys.open("/etc/passwd", OpenFlags.O_RDONLY)
        buf = proc.alloc(65536)
        n = yield proc.sys.read(fd, buf, 65536)
        yield proc.sys.close(fd)
        from repro.core.passwd import lookup_name_by_uid

        proc.scratch["whoami"] = lookup_name_by_uid(
            proc.read_buffer(buf, n).decode(), uid
        )
        return 0

    proc = box.spawn(body)
    machine.run()
    assert proc.context.scratch["whoami"] == "Visitor"


def test_acl_file_hidden_from_listing(machine, box):
    boxed_write_file(box, "visible", b"x")
    results = run_calls([("readdir", ".")], machine=machine, box=box)
    assert "visible" in results[0]
    assert ACL_FILE_NAME not in results[0]


def test_acl_file_not_directly_writable(machine, box):
    assert (
        boxed_write_file(box, f"{box.home}/{ACL_FILE_NAME}", b"Evil rwlxa\n")
        == -Errno.EACCES
    )


def test_grant_lets_other_identity_in(machine, alice):
    a = IdentityBox(machine, alice, "UserA")
    b = IdentityBox(machine, alice, "UserB", supervisor=a.supervisor)
    boxed_write_file(a, "shared.txt", b"for b")
    a.grant(a.home, "UserB", "rl")
    assert boxed_read_file(b, a.home + "/shared.txt") == b"for b"


def test_visitor_self_administers_acl(machine, alice):
    a = IdentityBox(machine, alice, "UserA")
    b = IdentityBox(machine, alice, "UserB", supervisor=a.supervisor)
    boxed_write_file(a, "doc", b"d")
    results = run_calls(
        [("setacl", ".", "UserB", "rl")], machine=machine, box=a, cwd=a.home
    )
    assert results == [0]
    assert boxed_read_file(b, a.home + "/doc") == b"d"


def test_setacl_requires_admin_right(machine, alice):
    a = IdentityBox(machine, alice, "UserA")
    b = IdentityBox(machine, alice, "UserB", supervisor=a.supervisor)
    results = run_calls(
        [("setacl", a.home, "UserB", "rwlxa")], machine=machine, box=b
    )
    assert results == [-Errno.EACCES]


def test_identity_box_run_oneshot(machine, alice):
    def body(proc, args):
        name = yield proc.sys.get_user_name()
        proc.scratch["name"] = name
        return 0

    proc = identity_box_run(machine, alice, "OneShot", body)
    assert proc.exit_status == 0
    assert proc.context.scratch["name"] == "OneShot"


def test_signal_containment_same_identity(machine, alice):
    box = IdentityBox(machine, alice, "Visitor")

    def victim(proc, args):
        while True:
            yield proc.compute(us=5)

    vproc = box.spawn(victim, comm="victim")

    def killer(proc, args):
        result = yield proc.sys.kill(vproc.pid, Signal.SIGKILL)
        proc.scratch["kill"] = result
        return 0

    kproc = box.spawn(killer, comm="killer")
    machine.run(max_steps=100_000)
    assert kproc.context.scratch["kill"] == 0
    assert not vproc.alive


def test_signal_containment_cross_identity_denied(machine, alice):
    a = IdentityBox(machine, alice, "UserA")
    b = IdentityBox(machine, alice, "UserB", supervisor=a.supervisor)

    def victim(proc, args):
        for _ in range(200):
            yield proc.compute(us=5)
        return 0

    vproc = a.spawn(victim)
    results = run_calls(
        [("kill", vproc.pid, int(Signal.SIGKILL))], machine=machine, box=b
    )
    assert results == [-Errno.EPERM]
    machine.run(max_steps=100_000)
    assert vproc.exit_status == 0  # survived


def test_signal_to_unboxed_process_denied(machine, alice, box):
    def outside(proc, args):
        for _ in range(100):
            yield proc.compute(us=5)
        return 0

    outsider = machine.spawn(outside, cred=alice)
    results = run_calls(
        [("kill", outsider.pid, int(Signal.SIGKILL))], machine=machine, box=box
    )
    assert results == [-Errno.EPERM]
    assert outsider.exit_status == 0


def test_children_inherit_box_identity(machine, alice, box):
    def child(proc, args):
        name = yield proc.sys.get_user_name()
        proc.scratch["name"] = name
        return 0

    machine.register_program("child", child)
    # stage the program into the box home (the visitor can execute it there)
    machine.install_program(box.owner_task, f"{box.home}/child.exe", "child")

    def parent(proc, args):
        pid = yield proc.sys.spawn("child.exe", ())
        proc.scratch["child_pid"] = pid
        yield proc.sys.waitpid()
        return 0

    pproc = box.spawn(parent)
    machine.run_to_completion()
    child_pid = pproc.context.scratch["child_pid"]
    assert child_pid > 0
    child_proc = machine.process(child_pid)
    assert child_proc.context.scratch["name"] == "Visitor"
