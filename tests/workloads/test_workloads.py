"""Workload models and the measurement runner (Figure 5 scaffolding)."""

import pytest

from repro.kernel.timing import CostModel
from repro.workloads import (
    ALL_APPS,
    AMANDA,
    MAKE,
    MICROBENCHES,
    MICROBENCH_BY_NAME,
    SCIENCE_APPS,
    measure_app,
    measure_microbench,
    run_app,
    run_microbench,
)

#: Small scale for test speed; overheads are scale-invariant by design.
SCALE = 0.002


def test_profile_roster_matches_figure_5b():
    assert [p.name for p in ALL_APPS] == ["amanda", "blast", "cms", "hf", "ibis", "make"]


def test_microbench_roster_matches_figure_5a():
    assert [s.name for s in MICROBENCHES] == [
        "getpid",
        "stat",
        "open-close",
        "read-1b",
        "read-8kb",
        "write-1b",
        "write-8kb",
    ]


def test_scaled_iters_never_zero():
    assert AMANDA.scaled_iters(1e-9) == 1
    assert MAKE.scaled_spawns(1e-9) == 1
    assert AMANDA.scaled_spawns(1.0) == 0  # science apps do not spawn


def test_runs_are_deterministic():
    a1 = run_app(AMANDA, boxed=False, scale=SCALE)
    a2 = run_app(AMANDA, boxed=False, scale=SCALE)
    assert a1 == a2


def test_boxed_run_slower_than_unmodified():
    base, _ = run_app(AMANDA, boxed=False, scale=SCALE)
    boxed, _ = run_app(AMANDA, boxed=True, scale=SCALE)
    assert boxed > base


def test_overhead_roughly_scale_invariant():
    r_small = measure_app(AMANDA, scale=SCALE)
    r_big = measure_app(AMANDA, scale=SCALE * 4)
    assert r_small.overhead_pct == pytest.approx(r_big.overhead_pct, abs=0.3)


def test_make_spawns_children():
    _s, syscalls_without = run_app(AMANDA, boxed=False, scale=SCALE)
    _s2, syscalls_make = run_app(MAKE, boxed=False, scale=SCALE)
    assert syscalls_make > 0
    # make's run includes spawn + waitpid traffic
    base, n = run_app(MAKE, boxed=False, scale=0.01)
    assert n > MAKE.scaled_iters(0.01) * MAKE.syscalls_per_iter()


def test_microbench_difference_method_cancels_startup():
    per_call = run_microbench(
        MICROBENCH_BY_NAME["getpid"], boxed=False, iterations=500
    )
    # an unmodified getpid costs exactly one trap
    assert per_call == pytest.approx(0.35, abs=0.01)


def test_boxed_getpid_order_of_magnitude():
    r = measure_microbench(MICROBENCH_BY_NAME["getpid"], iterations=300)
    assert r.slowdown > 10


def test_bulk_reads_cheaper_per_byte_boxed():
    small = measure_microbench(MICROBENCH_BY_NAME["read-1b"], iterations=300)
    big = measure_microbench(MICROBENCH_BY_NAME["read-8kb"], iterations=300)
    # the channel amortizes: 8 KiB is nowhere near 8192x the 1-byte cost
    assert big.boxed_us < small.boxed_us * 10


def test_cost_model_override_plumbs_through():
    slow = CostModel().scaled(context_switch_ns=50_000)
    fast = CostModel().scaled(context_switch_ns=100)
    r_slow = run_microbench(
        MICROBENCH_BY_NAME["getpid"], boxed=True, iterations=200, costs=slow
    )
    r_fast = run_microbench(
        MICROBENCH_BY_NAME["getpid"], boxed=True, iterations=200, costs=fast
    )
    assert r_slow > 5 * r_fast


@pytest.mark.parametrize("profile", SCIENCE_APPS, ids=lambda p: p.name)
def test_science_overheads_in_paper_band(profile):
    """Each science app lands within ±40% (relative) of its paper overhead."""
    result = measure_app(profile, scale=SCALE)
    assert result.overhead_pct == pytest.approx(
        profile.paper_overhead_pct, rel=0.4, abs=0.5
    )


def test_make_overhead_in_paper_band():
    result = measure_app(MAKE, scale=SCALE)
    assert 25.0 < result.overhead_pct < 45.0


def test_science_vs_build_ordering():
    """The paper's qualitative claim: metadata-bound builds suffer far more."""
    make_result = measure_app(MAKE, scale=SCALE)
    for profile in SCIENCE_APPS:
        science_result = measure_app(profile, scale=SCALE)
        assert make_result.overhead_pct > 3 * science_result.overhead_pct


def test_snapshot_templates_measure_identically(monkeypatch):
    """Forked-template runs return byte-identical measurements to cold boots.

    The measurement protocol demands identical fresh machines per run; a
    fork of an immutable template must be indistinguishable from a cold
    boot in every reported number.
    """
    from repro.workloads import runner

    monkeypatch.delenv("REPRO_SNAPSHOT_FIXTURES", raising=False)
    cold = measure_app(MAKE, scale=SCALE)

    monkeypatch.setenv("REPRO_SNAPSHOT_FIXTURES", "1")
    runner._TEMPLATES.clear()
    first = measure_app(MAKE, scale=SCALE)   # builds the template
    second = measure_app(MAKE, scale=SCALE)  # pure fork path
    for warm in (first, second):
        assert warm.base_s == cold.base_s
        assert warm.boxed_s == cold.boxed_s
        assert warm.base_syscalls == cold.base_syscalls
        assert warm.boxed_syscalls == cold.boxed_syscalls
