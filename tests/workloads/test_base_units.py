"""The workload building blocks: units, bodies, child programs."""

import pytest

from repro.kernel import Machine, OpenFlags
from repro.kernel.vfs import join
from repro.workloads.base import (
    AppProfile,
    BLOCK,
    INPUT_FILE,
    META_FILES,
    META_PREFIX,
    OUTPUT_FILE,
    app_body,
    child_body,
    workload_unit,
)

TINY_PROFILE = AppProfile(
    name="tiny",
    description="unit-test profile",
    paper_runtime_s=1.0,
    paper_overhead_pct=0.0,
    iters=4,
    compute_us=10,
    reads_8k=2,
    writes_8k=1,
    stats=3,
    openclose=1,
    small_reads=1,
    small_writes=1,
)


@pytest.fixture
def workdir(machine, alice):
    task = machine.host_task(alice, cwd="/home/alice")
    machine.kcall_x(task, "mkdir", "/home/alice/work", 0o755)
    block = b"D" * BLOCK
    machine.write_file(task, join("/home/alice/work", INPUT_FILE), block * 70)
    machine.write_file(task, join("/home/alice/work", OUTPUT_FILE), b"")
    for i in range(META_FILES):
        machine.write_file(task, f"/home/alice/work/{META_PREFIX}{i}", b"m")
    return "/home/alice/work"


def test_syscalls_per_iter_accounting():
    assert TINY_PROFILE.syscalls_per_iter() == 2 + 1 + 3 + 2 + 1 + 1


def test_workload_unit_issues_expected_calls(machine, alice, workdir):
    issued = []

    def probe(proc, args):
        in_fd = yield proc.sys.open(INPUT_FILE, OpenFlags.O_RDONLY)
        out_fd = yield proc.sys.open(OUTPUT_FILE, OpenFlags.O_WRONLY)
        buf = proc.alloc(BLOCK)
        before = machine.proc_syscalls
        yield from workload_unit(proc, TINY_PROFILE, in_fd, out_fd, buf, 0)
        issued.append(machine.proc_syscalls - before)
        return 0

    machine.spawn(probe, cred=alice, cwd=workdir)
    machine.run_to_completion()
    assert issued == [TINY_PROFILE.syscalls_per_iter()]


def test_app_body_completes_and_writes_output(machine, alice, workdir):
    factory = app_body(TINY_PROFILE, scale=1.0)
    proc = machine.spawn(factory, cred=alice, cwd=workdir)
    machine.run_to_completion()
    assert proc.exit_status == 0
    task = machine.host_task(alice, cwd=workdir)
    st = machine.kcall_x(task, "stat", OUTPUT_FILE)
    assert st.st_size > 0


def test_child_body_runs_standalone(machine, alice, workdir):
    profile = AppProfile(
        name="c",
        description="child",
        paper_runtime_s=1.0,
        paper_overhead_pct=0.0,
        iters=1,
        compute_us=1,
        stats=2,
        child_units=3,
    )
    proc = machine.spawn(child_body(profile), cred=alice, cwd=workdir)
    machine.run_to_completion()
    assert proc.exit_status == 0


def test_profile_scaling_bounds():
    profile = TINY_PROFILE
    assert profile.scaled_iters(1.0) == 4
    assert profile.scaled_iters(0.5) == 2
    assert profile.scaled_iters(1e-12) == 1
    assert profile.scaled_spawns(1.0) == 0  # no spawns declared
