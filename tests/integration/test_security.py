"""Escape-attempt battery: the §6 traps-and-pitfalls, adversarially.

Each test plays a hostile boxed program trying one of the classic
interposition escapes; the box must contain every one.
"""

import pytest

from repro.core import IdentityBox
from repro.core.acl import ACL_FILE_NAME
from repro.kernel import Errno, OpenFlags, Signal
from tests.helpers import boxed_read_file, boxed_write_file, run_calls


@pytest.fixture
def victim_file(machine, alice, alice_task):
    machine.write_file(alice_task, "/home/alice/victim.dat", b"protected", mode=0o600)
    return "/home/alice/victim.dat"


@pytest.fixture
def evil_box(machine, alice):
    return IdentityBox(machine, alice, "JoeHacker")


def test_direct_read_denied(machine, evil_box, victim_file):
    assert boxed_read_file(evil_box, victim_file) == -Errno.EACCES


def test_relative_path_traversal_denied(machine, evil_box, victim_file):
    # climbing out of the home with ../../.. is just another path to check
    assert (
        boxed_read_file(evil_box, "../../../home/alice/victim.dat") == -Errno.EACCES
    )


def test_symlink_laundering_denied(machine, evil_box, victim_file):
    """Indirect paths (§6): a link in my home must not relax the target."""
    results = run_calls(
        [("symlink", victim_file, "innocent")], machine=machine, box=evil_box
    )
    assert results == [0]  # creating the link is fine...
    assert boxed_read_file(evil_box, "innocent") == -Errno.EACCES  # ...using it is not


def test_hard_link_laundering_denied(machine, evil_box, victim_file):
    results = run_calls(
        [("link", victim_file, "grabbed")], machine=machine, box=evil_box
    )
    assert results == [-Errno.EACCES]


def test_hard_link_write_amplification_denied(machine, alice_task, evil_box):
    """Fuzzer-found: linking a world-READABLE file into the visitor's home
    must fail — the home ACL would otherwise grant write on the alias."""
    machine.write_file(alice_task, "/home/alice/notes.txt", b"alice's", mode=0o644)
    # reading is legitimately allowed by the nobody fallback...
    assert boxed_read_file(evil_box, "/home/alice/notes.txt") == b"alice's"
    # ...but aliasing it into writable territory is not
    results = run_calls(
        [("link", "/home/alice/notes.txt", "alias")], machine=machine, box=evil_box
    )
    assert results == [-Errno.EACCES]
    assert machine.read_file(alice_task, "/home/alice/notes.txt") == b"alice's"


def test_cannot_drag_foreign_directories_through_tmp(machine, alice, evil_box):
    """Fuzzer-found: rename('..', 'sub') from the box home used to move
    /tmp/boxes — other visitors' homes included — into the attacker's
    namespace.  Entry mutations in un-ACL'd space get sticky semantics."""
    from repro.core.box import IdentityBox

    other = IdentityBox(machine, alice, "Innocent", supervisor=evil_box.supervisor)
    boxed_write_file(other, "treasure", b"safe")
    results = run_calls(
        [("rename", "..", "stolen"), ("rmdir", ".."), ("unlink", "../Innocent/treasure")],
        machine=machine,
        box=evil_box,
    )
    assert all(isinstance(r, int) and r < 0 for r in results)
    assert boxed_read_file(other, "treasure") == b"safe"


def test_acl_file_forgery_denied(machine, alice, alice_task, evil_box):
    """The visitor must not write ACL files anywhere, even in its own home."""
    assert (
        boxed_write_file(evil_box, f"{evil_box.home}/{ACL_FILE_NAME}", b"JoeHacker rwlxa")
        == -Errno.EACCES
    )
    # nor plant one into a directory that has none (privilege escalation)
    machine.kcall_x(alice_task, "mkdir", "/home/alice/pub", 0o777)
    assert (
        boxed_write_file(evil_box, f"/home/alice/pub/{ACL_FILE_NAME}", b"JoeHacker rwlxa")
        == -Errno.EACCES
    )


def test_rename_cannot_move_acl_files(machine, evil_box):
    boxed_write_file(evil_box, "fake", b"JoeHacker rwlxa\n")
    results = run_calls(
        [("rename", "fake", ACL_FILE_NAME)], machine=machine, box=evil_box
    )
    assert results == [-Errno.EACCES]


def test_chmod_cannot_reopen_unix_window(machine, evil_box, victim_file):
    results = run_calls([("chmod", victim_file, 0o777)], machine=machine, box=evil_box)
    assert results == [-Errno.EPERM]


def test_cannot_signal_outside_processes(machine, alice, evil_box):
    def bystander(proc, args):
        for _ in range(50):
            yield proc.compute(us=10)
        return 0

    outsider = machine.spawn(bystander, cred=alice)
    results = run_calls(
        [("kill", outsider.pid, int(Signal.SIGKILL))], machine=machine, box=evil_box
    )
    assert results == [-Errno.EPERM]
    assert outsider.exit_status == 0


def test_cannot_kill_by_guessing_pids(machine, evil_box):
    # probing the pid space neither kills nor reveals existence
    results = run_calls(
        [("kill", pid, int(Signal.SIGKILL)) for pid in range(1, 30)],
        machine=machine,
        box=evil_box,
    )
    assert all(r == -Errno.EPERM for r in results)


def test_spawned_children_stay_boxed(machine, alice, alice_task, evil_box, victim_file):
    """Containment is transitive: a child's escape attempt also fails."""

    def stealer(proc, args):
        result = yield proc.sys.open("/home/alice/victim.dat", OpenFlags.O_RDONLY)
        proc.scratch["open"] = result
        return 0

    machine.register_program("stealer", stealer)
    machine.install_program(evil_box.owner_task, f"{evil_box.home}/s.exe", "stealer")

    def parent(proc, args):
        pid = yield proc.sys.spawn("s.exe", ())
        proc.scratch["child"] = pid
        yield proc.sys.waitpid()
        return 0

    pproc = evil_box.spawn(parent)
    machine.run_to_completion()
    child = machine.process(pproc.context.scratch["child"])
    assert child.context.scratch["open"] == -Errno.EACCES


def test_nested_tracing_denied(machine, evil_box):
    """Parrot does not implement ptrace inside the box (§6)."""
    results = run_calls([("ptrace", 0, 1)], machine=machine, box=evil_box)
    assert results == [-Errno.ENOSYS]


def test_mount_denied(machine, evil_box):
    results = run_calls([("mount", "/dev/evil", "/")], machine=machine, box=evil_box)
    assert results == [-Errno.ENOSYS]


def test_etc_passwd_redirect_cannot_corrupt_real_db(machine, evil_box, root_task):
    """Writing 'to /etc/passwd' inside the box hits the private copy only."""
    before = machine.read_file(root_task, "/etc/passwd")

    def body(proc, args):
        fd = yield proc.sys.open("/etc/passwd", OpenFlags.O_WRONLY | OpenFlags.O_TRUNC)
        proc.scratch["fd"] = fd
        if isinstance(fd, int) and fd >= 0:
            addr = proc.alloc_bytes(b"root::0:0::/:/bin/sh\n")
            yield proc.sys.write(fd, addr, 21)
            yield proc.sys.close(fd)
        return 0

    evil_box.spawn(body)
    machine.run()
    assert machine.read_file(root_task, "/etc/passwd") == before


def test_fd_numbers_cannot_be_guessed(machine, evil_box):
    """The supervisor's own descriptors are not addressable from the box."""
    results = run_calls(
        [("read", fd, 0, 1) for fd in (0, 1, 2, 50, 998)],
        machine=machine,
        box=evil_box,
    )
    assert all(r == -Errno.EBADF for r in results)


def test_audit_survives_the_attack_session(machine, alice, victim_file):
    from repro.core import AuditLog

    audit = AuditLog()
    box = IdentityBox(machine, alice, "JoeHacker", audit=audit)
    boxed_read_file(box, victim_file)
    boxed_write_file(box, "loot.txt", b"nothing")
    denied_targets = [r.target for r in audit.denials()]
    assert any("victim.dat" in t for t in denied_targets)
    accessed = box.audit.objects_accessed("JoeHacker")
    assert any("loot.txt" in t for t in accessed)
