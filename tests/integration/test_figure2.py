"""Figure 2 end to end: the interactive identity-box session."""

import pytest

from repro.core import AuditLog, IdentityBox, lookup_name_by_uid
from repro.kernel import Errno, OpenFlags


@pytest.fixture
def dthain(machine):
    return machine.add_user("dthain")


@pytest.fixture
def setup(machine, dthain):
    task = machine.host_task(dthain, cwd="/home/dthain")
    machine.write_file(task, "/home/dthain/secret", b"top secret", mode=0o600)
    return task


def test_figure2_session(machine, dthain, setup):
    audit = AuditLog()
    box = IdentityBox(machine, dthain, "Freddy", audit=audit)
    transcript = {}

    def session(proc, args):
        # % whoami
        uid = yield proc.sys.getuid()
        fd = yield proc.sys.open("/etc/passwd", OpenFlags.O_RDONLY)
        buf = proc.alloc(65536)
        n = yield proc.sys.read(fd, buf, 65536)
        yield proc.sys.close(fd)
        transcript["whoami"] = lookup_name_by_uid(
            proc.read_buffer(buf, n).decode(), uid
        )
        # % cat ~dthain/secret -> denied
        transcript["secret"] = yield proc.sys.open(
            "/home/dthain/secret", OpenFlags.O_RDONLY
        )
        # % vi mydata -> allowed in the fresh home
        fd = yield proc.sys.open("mydata", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
        addr = proc.alloc_bytes(b"freddy's work")
        transcript["write"] = yield proc.sys.write(fd, addr, 13)
        yield proc.sys.close(fd)
        transcript["ls"] = yield proc.sys.readdir(".")
        return 0

    proc = box.spawn(session, comm="tcsh")
    machine.run_to_completion()
    assert proc.exit_status == 0

    # whoami shows the visiting identity, not any local account
    assert transcript["whoami"] == "Freddy"
    assert not machine.users.exists("Freddy")  # no account anywhere

    # the secret is denied: no ACL -> unix-as-nobody -> mode 600 says no
    assert transcript["secret"] == -Errno.EACCES

    # mydata was created where the home ACL grants Freddy everything
    assert transcript["write"] == 13
    assert "mydata" in transcript["ls"]

    # the supervising user can of course read the visitor's file directly
    owner_task = machine.host_task(dthain)
    assert machine.read_file(owner_task, f"{box.home}/mydata") == b"freddy's work"

    # and the audit trail shows the denial
    assert any("secret" in r.target for r in audit.denials())


def test_figure2_supervisor_is_root_of_the_box(machine, dthain, setup):
    """'A process outside of the box owned by dthain would be free to
    modify such files directly' (§3)."""
    box = IdentityBox(machine, dthain, "Freddy")
    owner_task = machine.host_task(dthain)
    machine.write_file(owner_task, f"{box.home}/planted", b"by dthain")
    from tests.helpers import boxed_read_file

    assert boxed_read_file(box, "planted") == b"by dthain"


def test_figure2_acl_initialized_to_visitor_full_rights(machine, dthain, setup):
    box = IdentityBox(machine, dthain, "Freddy")
    acl = box.policy.acl_of(box.home)
    assert acl.subjects() == ["Freddy"]
    assert acl.rights_for("Freddy").has_all("rwlxa")
