"""Figure 4 as executable documentation: the trapped-syscall cost anatomy.

The paper's Figure 4 fixes the control flow of one delegated syscall; this
suite asserts the simulated charges follow it exactly — per-category, so a
refactor that silently drops a context switch or a register peek fails here.
"""

import pytest

from repro.core.box import IdentityBox
from repro.kernel import Machine
from repro.kernel.ptrace import REGS_WORDS


def charges_for(calls_body, boxed: bool):
    """Run a one-process workload on a fresh machine; return charge deltas."""
    machine = Machine()
    cred = machine.add_user("u")
    if boxed:
        box = IdentityBox(machine, cred, "V")
        before = machine.clock.snapshot()
        box.spawn(calls_body)
    else:
        before = machine.clock.snapshot()
        machine.spawn(calls_body, cred=cred)
    machine.run_to_completion()
    after = machine.clock.snapshot()
    return {k: after.get(k, 0) - before.get(k, 0) for k in set(after) | set(before)}


def n_getpids(n):
    def body(proc, args):
        for _ in range(n):
            yield proc.sys.getpid()
        return 0

    return body


def test_each_trapped_call_pays_four_context_switches():
    """Entry stop + exit stop, each a switch to the supervisor and back."""
    machine = Machine()
    per_switch = machine.costs.context_switch_ns + machine.costs.cache_flush_ns
    delta = {
        k: charges_for(n_getpids(200), boxed=True).get(k, 0)
        - charges_for(n_getpids(100), boxed=True).get(k, 0)
        for k in ("switch", "trace", "trap")
    }
    assert delta["switch"] == 100 * 4 * per_switch


def test_each_trapped_call_peeks_registers_twice():
    """The supervisor examines the registers at both stops (getpid is the
    pass-through case: no nullify, no extra pokes)."""
    machine = Machine()
    per_peek = machine.costs.syscall_trap_ns + machine.costs.peekpoke_cost(REGS_WORDS)
    boxed_small = charges_for(n_getpids(100), boxed=True)
    boxed_big = charges_for(n_getpids(200), boxed=True)
    assert boxed_big["trace"] - boxed_small["trace"] == 100 * 2 * per_peek


def test_trap_charges_per_call():
    """Per trapped call: 2 traps per stop x 2 stops + 1 resume trap per
    stop... summarized, the delta must be an exact integer multiple of the
    trap cost and strictly larger than the untraced case's single trap."""
    machine = Machine()
    trap = machine.costs.syscall_trap_ns
    boxed = (
        charges_for(n_getpids(200), boxed=True)["trap"]
        - charges_for(n_getpids(100), boxed=True)["trap"]
    )
    plain = (
        charges_for(n_getpids(200), boxed=False)["trap"]
        - charges_for(n_getpids(100), boxed=False)["trap"]
    )
    assert plain == 100 * trap
    assert boxed % trap == 0
    assert boxed >= 7 * plain  # "at least six context switches" worth of traps


def test_untraced_calls_never_touch_trace_or_switch_budgets():
    charges = charges_for(n_getpids(50), boxed=False)
    assert charges.get("trace", 0) == 0
    assert charges.get("switch", 0) == 0


def test_compute_time_identical_inside_and_outside():
    """Interposition taxes syscalls, never the application's own CPU."""

    def body(proc, args):
        yield proc.compute(ms=7)
        return 0

    assert (
        charges_for(body, boxed=True)["compute"]
        == charges_for(body, boxed=False)["compute"]
        == 7_000_000
    )


def test_bulk_read_charges_two_copies():
    """Figure 4(b): the supervisor copies into the channel, the child copies
    out — double the unmodified data movement."""
    from repro.kernel import OpenFlags

    def reader(n):
        def body(proc, args):
            machine_path = "/tmp/bulk.dat"
            fd = yield proc.sys.open(machine_path, OpenFlags.O_RDONLY)
            buf = proc.alloc(8192)
            for _ in range(n):
                yield proc.sys.pread(fd, buf, 8192, 0)
            yield proc.sys.close(fd)
            return 0

        return body

    def io_delta(boxed):
        machine = Machine()
        cred = machine.add_user("u")
        task = machine.host_task(cred)
        machine.write_file(task, "/tmp/bulk.dat", b"z" * 8192)

        def run(n):
            m2 = Machine()
            c2 = m2.add_user("u")
            t2 = m2.host_task(c2)
            m2.write_file(t2, "/tmp/bulk.dat", b"z" * 8192)
            if boxed:
                box = IdentityBox(m2, c2, "V")
                box.spawn(reader(n))
            else:
                m2.spawn(reader(n), cred=c2)
            m2.run_to_completion()
            return m2.clock.snapshot().get("io", 0)

        return run(40) - run(20)

    plain_io = io_delta(boxed=False)
    boxed_io = io_delta(boxed=True)
    assert boxed_io == pytest.approx(2 * plain_io, rel=0.05)
