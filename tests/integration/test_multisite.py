"""Consistent global identity across multiple sites — the paper's title.

Two Chirp servers run by different, unprivileged operators on different
machines.  Fred is `globus:/O=UnivNowhere/CN=Fred` at *both*, with no local
account at either: ACLs he writes on site A name exactly the identity that
authenticates at site B, and a boxed job can read input from one server and
write output to the other through the /chirp namespace.
"""

import pytest

from repro.chirp import (
    ChirpClient,
    ChirpDriver,
    ChirpServer,
    GlobusAuthenticator,
    ServerAuth,
)
from repro.core import Acl, IdentityBox, Rights
from repro.gsi import CertificateAuthority, CredentialStore, provision_user
from repro.kernel import OpenFlags
from repro.net import Cluster

SITE_A = "storage.nowhere.edu"
SITE_B = "compute.nd.edu"
LAPTOP = "laptop.nowhere.edu"
FRED_DN = "/O=UnivNowhere/CN=Fred"
FRED = f"globus:{FRED_DN}"


@pytest.fixture
def world():
    cluster = Cluster()
    for host in (SITE_A, SITE_B, LAPTOP):
        cluster.add_machine(host)
    ca = CertificateAuthority("UnivNowhere CA")
    trust = CredentialStore()
    trust.trust(ca)
    wallet = provision_user(ca, trust, FRED_DN)

    servers = {}
    for host, operator in ((SITE_A, "keeper_a"), (SITE_B, "keeper_b")):
        machine = cluster.machine(host)
        owner = machine.add_user(operator)
        server = ChirpServer(
            machine,
            owner,
            network=cluster.network,
            auth=ServerAuth(credential_store=trust),
        )
        acl = Acl()
        acl.set_entry("globus:/O=UnivNowhere/*", Rights.parse("rlv(rwlax)"))
        server.set_root_acl(acl)
        server.serve()
        servers[host] = server
    return cluster, servers, wallet


def _client(cluster, wallet, host):
    client = ChirpClient.connect(cluster.network, LAPTOP, host)
    client.authenticate([GlobusAuthenticator(wallet)])
    return client


def test_same_principal_at_both_sites(world):
    cluster, servers, wallet = world
    a = _client(cluster, wallet, SITE_A)
    b = _client(cluster, wallet, SITE_B)
    assert a.whoami() == b.whoami() == FRED


def test_acl_written_at_one_site_names_identity_used_at_other(world):
    cluster, servers, wallet = world
    a = _client(cluster, wallet, SITE_A)
    a.mkdir("/data")
    # the ACL at site A literally contains the same string site B verifies
    assert FRED in a.getacl("/data")
    b = _client(cluster, wallet, SITE_B)
    b.mkdir("/results")
    assert a.getacl("/data").strip() == b.getacl("/results").strip()


def test_no_local_accounts_created_anywhere(world):
    cluster, servers, wallet = world
    a = _client(cluster, wallet, SITE_A)
    a.mkdir("/data")
    a.put(b"input", "/data/in.dat")
    for host, server in servers.items():
        names = {acct.name for acct in server.machine.users.accounts()}
        assert names == {"root", "nobody", server.owner_cred.username}


def test_boxed_job_spans_both_sites(world):
    """A boxed process on the laptop pipes data from site A to site B."""
    cluster, servers, wallet = world
    a = _client(cluster, wallet, SITE_A)
    a.mkdir("/data")
    payload = b"dataset-" + b"x" * 20_000
    a.put(payload, "/data/in.dat")
    b = _client(cluster, wallet, SITE_B)
    b.mkdir("/results")

    laptop = cluster.machine(LAPTOP)
    fred_local = laptop.add_user("fred")
    box = IdentityBox(laptop, fred_local, FRED)
    box.supervisor.mount(
        "/chirp", ChirpDriver(cluster.network, LAPTOP, [GlobusAuthenticator(wallet)])
    )

    def pipeline(proc, args):
        src = yield proc.sys.open(f"/chirp/{SITE_A}/data/in.dat", OpenFlags.O_RDONLY)
        dst = yield proc.sys.open(
            f"/chirp/{SITE_B}/results/out.dat",
            OpenFlags.O_WRONLY | OpenFlags.O_CREAT,
        )
        buf = proc.alloc(8192)
        while True:
            n = yield proc.sys.read(src, buf, 8192)
            if n <= 0:
                break
            yield proc.sys.write(dst, buf, n)
        yield proc.sys.close(src)
        yield proc.sys.close(dst)
        return 0

    proc = box.spawn(pipeline)
    laptop.run_to_completion()
    assert proc.exit_status == 0
    assert b.get("/results/out.dat") == payload


def test_revocation_at_one_site_is_local(world):
    cluster, servers, wallet = world
    a = _client(cluster, wallet, SITE_A)
    b = _client(cluster, wallet, SITE_B)
    a.mkdir("/data")
    b.mkdir("/results")
    # site A's operator locks Fred out of the root (owner-level edit)
    servers[SITE_A].set_root_acl(Acl())  # empty ACL: deny everyone
    from repro.chirp import ChirpError

    with pytest.raises(ChirpError):
        a.readdir("/")
    # site B is unaffected: authorization is per-site, identity is global
    assert b.readdir("/") == ["results"]
