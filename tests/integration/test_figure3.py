"""Figure 3 end to end: discover, authenticate, reserve, stage, exec, fetch."""

import pytest

from repro.chirp import (
    CatalogServer,
    ChirpClient,
    ChirpError,
    ChirpServer,
    GlobusAuthenticator,
    HostnameAuthenticator,
    ServerAuth,
    advertise,
    list_servers,
)
from repro.core import Acl, Rights
from repro.gsi import CertificateAuthority, CredentialStore, provision_user
from repro.kernel import OpenFlags
from repro.net import Cluster

SERVER = "server1.nowhere.edu"
LAPTOP = "laptop.cs.nowhere.edu"
CATALOG = "catalog.nowhere.edu"
FRED_DN = "/O=UnivNowhere/CN=Fred"


@pytest.fixture
def world():
    cluster = Cluster()
    for host in (SERVER, LAPTOP, CATALOG):
        cluster.add_machine(host)
    ca = CertificateAuthority("UnivNowhere CA")
    trust = CredentialStore()
    trust.trust(ca)
    fred_wallet = provision_user(ca, trust, FRED_DN)

    server_machine = cluster.machine(SERVER)
    dthain = server_machine.add_user("dthain")
    server = ChirpServer(
        server_machine,
        dthain,
        network=cluster.network,
        auth=ServerAuth(credential_store=trust),
    )
    acl = Acl()
    acl.set_entry("hostname:*.nowhere.edu", Rights.parse("rlx"))
    acl.set_entry("globus:/O=UnivNowhere/*", Rights.parse("rlv(rwlax)"))
    server.set_root_acl(acl)
    server.serve()

    catalog = CatalogServer(cluster.network, CATALOG)
    catalog.serve()
    advertise(cluster.network, SERVER, server, CATALOG)

    def sim(proc, args):
        yield proc.compute(ms=100)
        fd = yield proc.sys.open("out.dat", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
        addr = proc.alloc_bytes(b"results\n" * 512)
        yield proc.sys.write(fd, addr, 8 * 512)
        yield proc.sys.close(fd)
        return 0

    server_machine.register_program("sim", sim)
    return cluster, server, fred_wallet


def test_full_workflow(world):
    cluster, server, fred_wallet = world

    # 0. discovery
    records = list_servers(cluster.network, LAPTOP, CATALOG)
    assert [r.hostname for r in records] == [SERVER]

    # connect & authenticate with GSI
    client = ChirpClient.connect(cluster.network, LAPTOP, SERVER)
    principal = client.authenticate([GlobusAuthenticator(fred_wallet)])
    assert principal == f"globus:{FRED_DN}"

    # 1-2. mkdir /work via the reserve right; ACL is fresh and Fred-only
    client.mkdir("/work")
    assert client.getacl("/work").strip() == f"globus:{FRED_DN} rwlxa"

    # 3. stage in the executable
    client.put(b"#!repro:sim\n", "/work/sim.exe", mode=0o755)

    # 4. exec in an identity box named by the principal
    t_before = cluster.clock.now_ns
    assert client.exec("/work/sim.exe", cwd="/work") == 0
    assert cluster.clock.now_ns - t_before >= 100_000_000  # the compute ran

    # 5. retrieve the output
    assert client.get("/work/out.dat") == b"results\n" * 512

    # cleanup, as the figure shows
    client.unlink("/work/out.dat")
    client.unlink("/work/sim.exe")
    client.rmdir("/work")
    assert client.readdir("/") == []


def test_no_account_exists_for_fred_anywhere(world):
    cluster, server, fred_wallet = world
    client = ChirpClient.connect(cluster.network, LAPTOP, SERVER)
    client.authenticate([GlobusAuthenticator(fred_wallet)])
    client.mkdir("/work")
    client.put(b"data", "/work/d")
    # the server machine's account database never heard of Fred
    names = [a.name for a in server.machine.users.accounts()]
    assert names == ["root", "dthain", "nobody"]
    # and the files are physically owned by the unprivileged operator
    st = server.machine.kcall_x(
        server.owner_task, "stat", server.export_root + "/work/d"
    )
    assert st.st_uid == server.owner_cred.uid


def test_hostname_visitors_limited_to_rlx(world):
    cluster, server, fred_wallet = world
    visitor = ChirpClient.connect(cluster.network, LAPTOP, SERVER)
    visitor.authenticate([HostnameAuthenticator()])
    # can list the root...
    visitor.readdir("/")
    # ...but cannot reserve or write
    with pytest.raises(ChirpError):
        visitor.mkdir("/intruder")
    with pytest.raises(ChirpError):
        visitor.put(b"x", "/dropped")


def test_two_grid_users_share_via_acls(world):
    cluster, server, fred_wallet = world
    ca2 = CertificateAuthority("UnivNowhere CA")  # same CA by determinism
    trust2 = server.auth.credential_store
    george_wallet = provision_user(ca2, trust2, "/O=UnivNowhere/CN=George")

    fred = ChirpClient.connect(cluster.network, LAPTOP, SERVER)
    fred.authenticate([GlobusAuthenticator(fred_wallet)])
    george = ChirpClient.connect(cluster.network, LAPTOP, SERVER)
    george.authenticate([GlobusAuthenticator(george_wallet)])

    fred.mkdir("/work")
    fred.put(b"fred's results", "/work/results")
    with pytest.raises(ChirpError):
        george.get("/work/results")
    fred.setacl("/work", "globus:/O=UnivNowhere/CN=George", "rl")
    assert george.get("/work/results") == b"fred's results"
