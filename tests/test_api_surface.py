"""Public API surface: imports, exports, and small inspection helpers."""

import pytest

import repro


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_subpackage_exports_resolve():
    import repro.chirp
    import repro.core
    import repro.gsi
    import repro.interpose
    import repro.kernel
    import repro.net
    import repro.workloads

    for module in (
        repro.chirp,
        repro.core,
        repro.gsi,
        repro.interpose,
        repro.kernel,
        repro.net,
        repro.workloads,
    ):
        for name in module.__all__:
            assert getattr(module, name) is not None, f"{module.__name__}.{name}"


def test_public_modules_have_docstrings():
    import importlib
    import pkgutil

    missing = []
    package = repro
    for info in pkgutil.walk_packages(package.__path__, prefix="repro."):
        module = importlib.import_module(info.name)
        if not (module.__doc__ or "").strip():
            missing.append(info.name)
    assert not missing, f"modules without docstrings: {missing}"


def test_machine_process_inspection(machine, alice):
    def body(proc, args):
        yield proc.compute(us=1)
        return 0

    proc = machine.spawn(body, cred=alice)
    assert proc in machine.live_processes()
    assert machine.process(proc.pid) is proc
    machine.run_to_completion()
    assert proc not in machine.live_processes()
    assert proc in machine.processes()  # history retained


def test_proc_context_compute_units():
    from repro.kernel import ProcContext

    request = ProcContext.compute(ns=1, us=1, ms=1, s=1)
    assert request.compute_ns == 1 + 1_000 + 1_000_000 + 1_000_000_000


def test_chirp_driver_disconnect_all(cluster_world=None):
    from repro.chirp import ChirpClient, ChirpDriver, ChirpServer, ServerAuth
    from repro.chirp.auth import HostnameAuthenticator
    from repro.net import Cluster

    cluster = Cluster()
    cluster.add_machine("srv")
    cluster.add_machine("cli")
    machine = cluster.machine("srv")
    owner = machine.add_user("op")
    from repro.core import Acl, Rights

    server = ChirpServer(machine, owner, network=cluster.network)
    acl = Acl()
    acl.set_entry("hostname:*", Rights.parse("rwlxa"))
    server.set_root_acl(acl)
    server.serve()
    driver = ChirpDriver(cluster.network, "cli", [HostnameAuthenticator()])
    assert driver.readdir("/srv/") == []
    assert len(driver._clients) == 1
    driver.disconnect_all()
    assert len(driver._clients) == 0
    # reconnects transparently on next use
    assert driver.readdir("/srv/") == []


def test_version_string():
    assert repro.__version__.count(".") == 2
