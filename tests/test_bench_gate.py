"""The CI benchmark gate: regression arithmetic and exit codes."""

import json

from repro.bench.gate import TOLERANCE, compare, main

BASELINE = {
    "fig5a": {
        "getpid": {"boxed_p50_us": 14.0},
        "stat": {"boxed_p50_us": 20.0},
    },
    "fig5b": {
        "make": {"boxed_ops_per_sec": 15000.0},
    },
    "snapshot": {
        "fork_vs_boot": {"speedup_x": 25.0},
    },
    "fastlane": {
        "read_heavy": {"speedup_x": 2.5},
    },
}


def clone(payload):
    return json.loads(json.dumps(payload))


def test_identical_run_passes():
    assert compare(clone(BASELINE), BASELINE) == []


def test_faster_run_never_fails():
    current = clone(BASELINE)
    current["fig5a"]["getpid"]["boxed_p50_us"] = 1.0
    current["fig5b"]["make"]["boxed_ops_per_sec"] = 10**6
    assert compare(current, BASELINE) == []


def test_latency_regression_beyond_tolerance_fails():
    current = clone(BASELINE)
    current["fig5a"]["getpid"]["boxed_p50_us"] = 14.0 * TOLERANCE * 1.01
    failures = compare(current, BASELINE)
    assert len(failures) == 1 and "fig5a/getpid" in failures[0]


def test_latency_regression_within_tolerance_passes():
    current = clone(BASELINE)
    current["fig5a"]["getpid"]["boxed_p50_us"] = 14.0 * TOLERANCE * 0.99
    assert compare(current, BASELINE) == []


def test_throughput_regression_beyond_tolerance_fails():
    current = clone(BASELINE)
    current["fig5b"]["make"]["boxed_ops_per_sec"] = 15000.0 / TOLERANCE * 0.99
    failures = compare(current, BASELINE)
    assert len(failures) == 1 and "fig5b/make" in failures[0]


def test_snapshot_speedup_regression_beyond_tolerance_fails():
    current = clone(BASELINE)
    current["snapshot"]["fork_vs_boot"]["speedup_x"] = 25.0 / TOLERANCE * 0.99
    failures = compare(current, BASELINE)
    assert len(failures) == 1 and "snapshot/fork_vs_boot" in failures[0]


def test_snapshot_speedup_within_tolerance_passes():
    current = clone(BASELINE)
    current["snapshot"]["fork_vs_boot"]["speedup_x"] = 25.0 / TOLERANCE * 1.01
    assert compare(current, BASELINE) == []


def test_fastlane_speedup_regression_beyond_tolerance_fails():
    current = clone(BASELINE)
    current["fastlane"]["read_heavy"]["speedup_x"] = 2.5 / TOLERANCE * 0.99
    failures = compare(current, BASELINE)
    assert len(failures) == 1 and "fastlane/read_heavy" in failures[0]


def test_fastlane_speedup_within_tolerance_passes():
    current = clone(BASELINE)
    current["fastlane"]["read_heavy"]["speedup_x"] = 2.5 / TOLERANCE * 1.01
    assert compare(current, BASELINE) == []


def test_missing_series_fails():
    current = clone(BASELINE)
    del current["fig5a"]["stat"]
    del current["fig5b"]["make"]
    failures = compare(current, BASELINE)
    assert len(failures) == 2
    assert any("fig5a/stat" in f and "missing" in f for f in failures)
    assert any("fig5b/make" in f and "missing" in f for f in failures)


def test_extra_series_in_current_is_ignored():
    current = clone(BASELINE)
    current["fig5a"]["newcall"] = {"boxed_p50_us": 999.0}
    assert compare(current, BASELINE) == []


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def test_main_exit_codes_and_output(tmp_path, capsys):
    base = _write(tmp_path, "baseline.json", BASELINE)
    good = _write(tmp_path, "good.json", clone(BASELINE))
    assert main([good, base]) == 0
    assert "OK (5 series" in capsys.readouterr().out

    bad_payload = clone(BASELINE)
    bad_payload["fig5a"]["getpid"]["boxed_p50_us"] = 100.0
    bad = _write(tmp_path, "bad.json", bad_payload)
    assert main([bad, base]) == 1
    out = capsys.readouterr().out
    assert "FAIL fig5a/getpid" in out


def test_real_artifacts_gate_clean():
    """The checked-in baseline must accept itself (CI's sanity floor)."""
    import os

    path = os.path.join(os.path.dirname(__file__), "..", "benchmarks", "baseline.json")
    with open(path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    assert compare(clone(baseline), baseline) == []
    # and it covers every Figure-5 series plus the snapshot-fork pair
    assert len(baseline["fig5a"]) == 7
    assert len(baseline["fig5b"]) == 6
    assert len(baseline["snapshot"]) == 2
    # the fork baseline keeps the gate's floor at the >=20x acceptance bar
    assert baseline["snapshot"]["fork_vs_boot"]["speedup_x"] / TOLERANCE == 20.0
    # and the fast-lane baseline keeps its floor at the >=2x acceptance bar
    assert baseline["fastlane"]["read_heavy"]["speedup_x"] / TOLERANCE == 2.0


REPL_BASELINE = {
    "replication": {
        "blackout_availability": {"read_availability_pct": 100.0},
        "quorum_overhead": {"write_overhead_x": 3.0},
    },
}


def test_replication_availability_is_held_exactly():
    current = clone(REPL_BASELINE)
    # even a fraction of a percent of dropped reads fails: a blackout
    # drill losing ANY read means failover is broken, not slow
    current["replication"]["blackout_availability"]["read_availability_pct"] = 99.9
    failures = compare(current, REPL_BASELINE)
    assert len(failures) == 1 and "blackout_availability" in failures[0]
    assert compare(clone(REPL_BASELINE), REPL_BASELINE) == []


def test_replication_write_overhead_gets_the_usual_tolerance():
    current = clone(REPL_BASELINE)
    current["replication"]["quorum_overhead"]["write_overhead_x"] = (
        3.0 * TOLERANCE * 1.01
    )
    failures = compare(current, REPL_BASELINE)
    assert len(failures) == 1 and "quorum_overhead" in failures[0]
    current["replication"]["quorum_overhead"]["write_overhead_x"] = (
        3.0 * TOLERANCE * 0.99
    )
    assert compare(current, REPL_BASELINE) == []


def test_replication_rows_missing_from_current_fail():
    failures = compare({}, REPL_BASELINE)
    assert len(failures) == 2
    assert all("missing" in f for f in failures)
