"""The command-line front end."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["explode"])


def test_quickstart(capsys):
    assert main(["quickstart"]) == 0
    out = capsys.readouterr().out
    assert "% whoami" in out
    assert "Freddy" in out
    assert "Permission denied" in out
    assert "DENY" in out  # the audit shows the blocked secret read


def test_survey(capsys):
    assert main(["survey"]) == 0
    out = capsys.readouterr().out
    assert "IdentityBox" in out
    assert "per user" in out


def test_workflow(capsys):
    assert main(["workflow"]) == 0
    out = capsys.readouterr().out
    assert "globus:/O=UnivNowhere/CN=Fred" in out
    assert "exec status: 0" in out
    assert "900 bytes" in out


def test_audit(capsys):
    assert main(["audit"]) == 0
    out = capsys.readouterr().out
    assert "DENY" in out and ".secret-key" in out
    assert "ALLOW" in out and "cache.bin" in out


def test_fig5a(capsys):
    assert main(["fig5a", "--iterations", "100"]) == 0
    out = capsys.readouterr().out
    assert "getpid" in out and "write-8kb" in out


def test_fig5b(capsys):
    assert main(["fig5b", "--scale", "0.001"]) == 0
    out = capsys.readouterr().out
    assert "amanda" in out and "make" in out


def test_metrics_dumps_json_telemetry(capsys):
    import json

    assert main(["metrics", "--spans", "500"]) == 0
    snapshot = json.loads(capsys.readouterr().out)
    # the denial breakdown: the workflow's probe of the protected ACL
    # file is refused with EACCES, and that shows up by errno
    assert snapshot["denials"].get("EACCES", 0) >= 1
    # counters from both surfaces of the one pipeline...
    counters = snapshot["counters"]
    assert any(k.startswith("client.calls") for k in counters)
    assert any("surface=chirp" in k for k in counters)
    assert any("surface=syscall" in k for k in counters)
    # ...histograms with percentiles...
    hist = next(iter(snapshot["histograms"].values()))
    assert {"count", "p50_ns", "p90_ns", "p99_ns"} <= set(hist)
    # ...and one trace stitching the remote exec to its boxed syscalls
    spans = snapshot["spans"]
    rpc = next(s for s in spans if s["name"] == "rpc:exec")
    remote = next(s for s in spans if s["name"] == "chirp:exec")
    assert remote["trace_id"] == rpc["trace_id"]
    assert remote["parent_id"] == rpc["span_id"]
    assert any(
        s["name"] == "syscall:write" and s["parent_id"] == remote["span_id"]
        for s in spans
    )
    # ...plus the replication drill: one replica went dark and came back,
    # so every repl.* stage shows up with live numbers
    repl = snapshot["replication"]
    assert repl["quorum_writes"] >= 1  # the write that quorumed past it
    assert repl["missed_writes"] >= 1  # logged for the dark replica
    assert repl["failover_reads"] >= 1  # a live replica answered the read
    assert repl["read_repairs"] >= 1  # the replay when the outage lifted
    assert repl["repairs"] == 1  # the rejoin ran anti-entropy once
    assert repl["quorum_failures"] == 0
    # ...and the fast-lane drill: a memoized re-read, an invalidation, a
    # coalesced envelope, and a quota rejection, all with live numbers
    fast = snapshot["fastlane"]
    assert fast["cache"]["hits"] >= 1
    assert fast["cache"]["invalidations"] >= 1
    assert fast["batches"] >= 1
    assert fast["coalesced_frames"] >= 2
    assert fast["quota"]["rejected"] >= 1
    assert fast["quota"]["exhausted"]  # the drained principal, by name


def test_fuzz_writes_artifacts_and_exits_clean(tmp_path, capsys):
    import json

    out_dir = tmp_path / "fuzz-out"
    argv = ["fuzz", "--seed", "7", "--budget", "25", "--out", str(out_dir)]
    assert main(argv) == 0
    stdout = capsys.readouterr().out
    assert "25 execs" in stdout
    report = json.loads((out_dir / "report.json").read_text())
    assert report["seed"] == 7
    assert report["executions"] == 25
    assert report["violations"] == 0
    assert not list(out_dir.glob("reproducer-*.json"))
    corpus = json.loads((out_dir / "corpus.json").read_text())
    coverage = json.loads((out_dir / "coverage.json").read_text())
    assert report["corpus"] == corpus
    assert report["coverage"] == coverage


def test_fuzz_is_deterministic_across_invocations(tmp_path, capsys):
    blobs = []
    for name in ("a", "b"):
        out_dir = tmp_path / name
        argv = ["fuzz", "--seed", "3", "--budget", "20", "--out", str(out_dir)]
        assert main(argv) == 0
        blobs.append((out_dir / "report.json").read_bytes())
    capsys.readouterr()
    assert blobs[0] == blobs[1]
