"""Test utilities: machine construction and syscall scripts in/out of boxes."""

from __future__ import annotations

from dataclasses import astuple
from typing import Any

from repro.config import snapshot_fixtures_enabled
from repro.core.box import IdentityBox
from repro.kernel.fdtable import OpenFlags
from repro.kernel.machine import Machine, WorldSnapshot
from repro.kernel.timing import CostModel
from repro.kernel.users import Credentials

__all__ = [
    "boxed_read_file",
    "boxed_write_file",
    "make_machine",
    "run_calls",
    "snapshot_fixtures_enabled",
]

#: Session-lifetime cache of warm-boot snapshots, one per distinct machine
#: configuration.  Populated lazily by :func:`make_machine` when snapshot
#: fixtures are enabled; safe because a WorldSnapshot is immutable and
#: every consumer gets its own forked Machine.
_WARM_SNAPSHOTS: dict[tuple, WorldSnapshot] = {}


def make_machine(
    *,
    costs: CostModel | None = None,
    hostname: str = "localhost",
    telemetry=None,
    fresh: bool = False,
) -> Machine:
    """The one place tests construct a Machine.

    Cold-boots a fresh world normally.  Under ``REPRO_SNAPSHOT_FIXTURES=1``
    it cold-boots each distinct configuration once per session, snapshots
    it, and hands every subsequent caller an O(size-of-diff) fork — the
    behaviour must be indistinguishable, which
    ``tests/properties/test_prop_snapshot.py`` checks.  Pass ``fresh=True``
    to force a cold boot (e.g. for tests that measure boot itself), or a
    ``telemetry`` sink, which binds to machine identity and so never
    shares a template.
    """
    if fresh or telemetry is not None or not snapshot_fixtures_enabled():
        return Machine(costs=costs, hostname=hostname, telemetry=telemetry)
    key = (hostname, None if costs is None else astuple(costs))
    snap = _WARM_SNAPSHOTS.get(key)
    if snap is None:
        snap = Machine(costs=costs, hostname=hostname).snapshot()
        _WARM_SNAPSHOTS[key] = snap
    return Machine(snapshot=snap)


def run_calls(
    calls: list[tuple],
    *,
    machine: Machine,
    cred: Credentials | None = None,
    box: IdentityBox | None = None,
    cwd: str | None = None,
) -> list[Any]:
    """Run a list of ``(syscall_name, *args)`` tuples as one process.

    Returns the result of each call in order.  ``("compute", us)`` burns
    CPU.  Exactly one of ``cred`` (plain process) or ``box`` must be given.
    """
    results: list[Any] = []

    def body(proc, args):
        for name, *cargs in calls:
            if name == "compute":
                yield proc.compute(us=cargs[0])
                results.append(0)
            else:
                result = yield getattr(proc.sys, name)(*cargs)
                results.append(result)
        return 0

    if box is not None:
        box.spawn(body, cwd=cwd, comm="test-script")
    else:
        assert cred is not None, "run_calls needs cred or box"
        machine.spawn(body, cred=cred, cwd=cwd or "/", comm="test-script")
    machine.run()
    return results


def boxed_write_file(box: IdentityBox, path: str, data: bytes) -> Any:
    """Write a file through the trapped-syscall path; returns the write result."""
    outcome: list[Any] = []

    def body(proc, args):
        fd = yield proc.sys.open(
            path, OpenFlags.O_WRONLY | OpenFlags.O_CREAT | OpenFlags.O_TRUNC
        )
        if isinstance(fd, int) and fd < 0:
            outcome.append(fd)
            return 1
        addr = proc.alloc_bytes(data)
        n = yield proc.sys.write(fd, addr, len(data))
        yield proc.sys.close(fd)
        outcome.append(n)
        return 0

    box.spawn(body, comm="boxed-write")
    box.machine.run()
    return outcome[0]


def boxed_read_file(box: IdentityBox, path: str) -> Any:
    """Read a file through the trapped-syscall path.

    Returns the file bytes, or the negative errno from ``open``/``read``.
    """
    outcome: list[Any] = []

    def body(proc, args):
        fd = yield proc.sys.open(path, OpenFlags.O_RDONLY)
        if isinstance(fd, int) and fd < 0:
            outcome.append(fd)
            return 1
        out = bytearray()
        buf = proc.alloc(65536)
        while True:
            n = yield proc.sys.read(fd, buf, 65536)
            if not isinstance(n, int) or n < 0:
                outcome.append(n)
                return 1
            if n == 0:
                break
            out.extend(proc.read_buffer(buf, n))
        yield proc.sys.close(fd)
        outcome.append(bytes(out))
        return 0

    box.spawn(body, comm="boxed-read")
    box.machine.run()
    return outcome[0]
