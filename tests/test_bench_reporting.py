"""The benchmark reporting helpers."""

import os

import pytest

from repro.bench.reporting import Table, banner, save_and_print


def test_table_renders_aligned_columns():
    table = Table(headers=("name", "value"))
    table.add("short", 1)
    table.add("much-longer-name", 2.5)
    text = table.render()
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert set(lines[1]) <= {"-", " "}
    assert "much-longer-name" in lines[3]
    # all rows align on the same column boundary
    assert lines[3].index("2.50") == lines[2].index("1")


def test_table_floats_formatted():
    table = Table(headers=("x",))
    table.add(3.14159)
    assert "3.14" in table.render()
    assert "3.14159" not in table.render()


def test_table_rejects_wrong_arity():
    table = Table(headers=("a", "b"))
    with pytest.raises(ValueError):
        table.add("only-one")


def test_banner():
    text = banner("Title")
    lines = text.strip().splitlines()
    assert lines[1] == "Title"
    assert set(lines[0]) == {"="}


def test_save_and_print_writes_file(capsys, tmp_path, monkeypatch):
    import repro.bench.reporting as reporting

    monkeypatch.setattr(reporting, "RESULTS_DIR", str(tmp_path))
    path = save_and_print("unit-test-report", "the contents")
    assert capsys.readouterr().out.strip() == "the contents"
    with open(path, encoding="utf-8") as handle:
        assert handle.read() == "the contents\n"
    assert os.path.dirname(path) == str(tmp_path)
