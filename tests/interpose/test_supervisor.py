"""The delegating supervisor: every handler family, both data paths."""

import pytest

from repro.core.acl import ACL_FILE_NAME
from repro.core.box import IdentityBox
from repro.kernel import Errno, OpenFlags
from repro.kernel.syscalls import R_OK, W_OK, X_OK, SEEK_END
from tests.helpers import boxed_read_file, boxed_write_file, run_calls

SMALL = b"tiny"
LARGE = bytes(range(256)) * 64  # 16 KiB, well over the peek/poke threshold


@pytest.fixture
def vbox(machine, alice):
    return IdentityBox(machine, alice, "Visitor")


# -- data movement: peek/poke vs the I/O channel ----------------------------- #


def test_small_write_read_roundtrip(machine, vbox):
    assert boxed_write_file(vbox, "small", SMALL) == len(SMALL)
    assert boxed_read_file(vbox, "small") == SMALL


def test_large_write_read_roundtrip(machine, vbox):
    assert boxed_write_file(vbox, "large", LARGE) == len(LARGE)
    assert boxed_read_file(vbox, "large") == LARGE


def test_large_transfers_use_the_channel(machine, vbox):
    before = vbox.supervisor.channel.bytes_staged
    boxed_write_file(vbox, "large", LARGE)
    boxed_read_file(vbox, "large")
    moved = vbox.supervisor.channel.bytes_staged - before
    assert moved >= 2 * len(LARGE)


def test_small_transfers_bypass_the_channel(machine, vbox):
    before = vbox.supervisor.channel.bytes_staged
    boxed_write_file(vbox, "small", SMALL)
    boxed_read_file(vbox, "small")
    assert vbox.supervisor.channel.bytes_staged == before


def test_boundary_transfer_sizes(machine, vbox):
    threshold = vbox.supervisor.small_io_threshold
    for size in (threshold - 1, threshold, threshold + 1):
        data = bytes(i % 251 for i in range(size))
        assert boxed_write_file(vbox, f"f{size}", data) == size
        assert boxed_read_file(vbox, f"f{size}") == data


def test_empty_read_at_eof(machine, vbox):
    boxed_write_file(vbox, "f", b"ab")
    results = []

    def body(proc, args):
        fd = yield proc.sys.open("f", OpenFlags.O_RDONLY)
        buf = proc.alloc(16)
        results.append((yield proc.sys.read(fd, buf, 16)))
        results.append((yield proc.sys.read(fd, buf, 16)))
        yield proc.sys.close(fd)
        return 0

    vbox.spawn(body)
    machine.run()
    assert results == [2, 0]


def test_pread_pwrite_with_offsets(machine, vbox):
    def body(proc, args):
        fd = yield proc.sys.open("f", OpenFlags.O_RDWR | OpenFlags.O_CREAT)
        big = proc.alloc_bytes(LARGE)
        yield proc.sys.pwrite(fd, big, len(LARGE), 0)
        tiny = proc.alloc_bytes(b"XY")
        yield proc.sys.pwrite(fd, tiny, 2, 100)
        buf = proc.alloc(4)
        n = yield proc.sys.pread(fd, buf, 4, 99)
        proc.scratch["window"] = proc.read_buffer(buf, n)
        yield proc.sys.close(fd)
        return 0

    proc = vbox.spawn(body)
    machine.run()
    assert proc.context.scratch["window"] == LARGE[99:100] + b"XY" + LARGE[102:103]


def test_sequential_reads_advance(machine, vbox):
    boxed_write_file(vbox, "f", b"abcdef")
    chunks = []

    def body(proc, args):
        fd = yield proc.sys.open("f", OpenFlags.O_RDONLY)
        buf = proc.alloc(3)
        for _ in range(2):
            n = yield proc.sys.read(fd, buf, 3)
            chunks.append(proc.read_buffer(buf, n))
        yield proc.sys.close(fd)
        return 0

    vbox.spawn(body)
    machine.run()
    assert chunks == [b"abc", b"def"]


# -- descriptor ops ------------------------------------------------------- #


def test_lseek_fstat_ftruncate_dup(machine, vbox):
    boxed_write_file(vbox, "f", b"0123456789")
    results = run_calls(
        [
            ("open", "f", int(OpenFlags.O_RDWR)),
        ],
        machine=machine,
        box=vbox,
    )
    fd = results[0]

    def body(proc, args):
        fd = yield proc.sys.open("f", OpenFlags.O_RDWR)
        proc.scratch["size"] = (yield proc.sys.fstat(fd)).st_size
        proc.scratch["end"] = yield proc.sys.lseek(fd, 0, SEEK_END)
        fd2 = yield proc.sys.dup(fd)
        proc.scratch["dup"] = fd2
        yield proc.sys.ftruncate(fd, 4)
        proc.scratch["size2"] = (yield proc.sys.fstat(fd2)).st_size
        yield proc.sys.close(fd)
        yield proc.sys.close(fd2)
        return 0

    proc = vbox.spawn(body)
    machine.run()
    assert proc.context.scratch["size"] == 10
    assert proc.context.scratch["end"] == 10
    assert proc.context.scratch["size2"] == 4
    assert proc.context.scratch["dup"] != fd


def test_bad_fd_operations(machine, vbox):
    results = run_calls(
        [("close", 77), ("lseek", 77, 0, 0), ("fstat", 77)],
        machine=machine,
        box=vbox,
    )
    assert results == [-Errno.EBADF, -Errno.EBADF, -Errno.EBADF]


def test_write_on_readonly_boxed_fd(machine, vbox):
    boxed_write_file(vbox, "f", b"x")

    def body(proc, args):
        fd = yield proc.sys.open("f", OpenFlags.O_RDONLY)
        addr = proc.alloc_bytes(b"y")
        proc.scratch["w"] = yield proc.sys.write(fd, addr, 1)
        yield proc.sys.close(fd)
        return 0

    proc = vbox.spawn(body)
    machine.run()
    assert proc.context.scratch["w"] == -Errno.EBADF


# -- metadata ------------------------------------------------------------ #


def test_stat_lstat_access_readlink(machine, vbox):
    boxed_write_file(vbox, "f", b"abc")
    results = run_calls(
        [
            ("symlink", "f", "ln"),
            ("stat", "ln"),
            ("lstat", "ln"),
            ("readlink", "ln"),
            ("access", "f", R_OK | W_OK),
            ("access", "f", X_OK),
        ],
        machine=machine,
        box=vbox,
    )
    assert results[0] == 0
    assert results[1].is_file
    assert results[2].is_symlink
    assert results[3] == "f"
    assert results[4] == 0
    assert results[5] == 0  # x granted by the home ACL (rwlxa)


def test_stat_of_acl_file_is_enoent(machine, vbox):
    results = run_calls(
        [("stat", ACL_FILE_NAME), ("lstat", ACL_FILE_NAME), ("access", ACL_FILE_NAME, R_OK)],
        machine=machine,
        box=vbox,
    )
    assert results == [-Errno.ENOENT, -Errno.ENOENT, -Errno.ENOENT]


def test_chmod_chown_denied_in_box(machine, vbox):
    boxed_write_file(vbox, "f", b"x")
    results = run_calls(
        [("chmod", "f", 0o777), ("chown", "f", 0, 0)],
        machine=machine,
        box=vbox,
    )
    assert results == [-Errno.EPERM, -Errno.EPERM]


def test_truncate_requires_w(machine, alice, alice_task, vbox):
    boxed_write_file(vbox, "mine", b"0123456789")
    results = run_calls([("truncate", "mine", 3)], machine=machine, box=vbox)
    assert results == [0]
    machine.write_file(alice_task, "/home/alice/hers", b"0123456789", mode=0o644)
    results = run_calls(
        [("truncate", "/home/alice/hers", 0)], machine=machine, box=vbox
    )
    assert results == [-Errno.EACCES]


def test_chdir_and_getcwd(machine, vbox):
    results = run_calls(
        [("mkdir", "sub"), ("chdir", "sub"), ("getcwd",)],
        machine=machine,
        box=vbox,
    )
    assert results[1] == 0
    assert results[2] == f"{vbox.home}/sub"


def test_chdir_denied_without_list_right(machine, alice, alice_task, vbox):
    machine.kcall_x(alice_task, "mkdir", "/home/alice/private", 0o700)
    results = run_calls(
        [("chdir", "/home/alice/private")], machine=machine, box=vbox
    )
    assert results == [-Errno.EACCES]


def test_chdir_to_file_is_enotdir(machine, vbox):
    boxed_write_file(vbox, "f", b"x")
    results = run_calls([("chdir", "f")], machine=machine, box=vbox)
    assert results == [-Errno.ENOTDIR]


# -- namespace mutation ---------------------------------------------------- #


def test_rename_within_home(machine, vbox):
    boxed_write_file(vbox, "a", b"1")
    results = run_calls([("rename", "a", "b")], machine=machine, box=vbox)
    assert results == [0]
    assert boxed_read_file(vbox, "b") == b"1"


def test_rename_out_of_home_denied(machine, vbox):
    boxed_write_file(vbox, "a", b"1")
    results = run_calls(
        [("rename", "a", "/home/alice/stolen")], machine=machine, box=vbox
    )
    assert results == [-Errno.EACCES]


def test_acl_file_protected_from_all_mutation(machine, vbox):
    results = run_calls(
        [
            ("unlink", ACL_FILE_NAME),
            ("rename", ACL_FILE_NAME, "x"),
            ("rename", "x", ACL_FILE_NAME),
            ("truncate", ACL_FILE_NAME, 0),
            ("symlink", "target", ACL_FILE_NAME),
            ("link", ACL_FILE_NAME, "y"),
        ],
        machine=machine,
        box=vbox,
    )
    assert all(r == -Errno.EACCES for r in results)


def test_hard_link_to_unreadable_file_denied(machine, alice, alice_task, vbox):
    machine.write_file(alice_task, "/home/alice/secret", b"s", mode=0o600)
    results = run_calls(
        [("link", "/home/alice/secret", "grab")], machine=machine, box=vbox
    )
    assert results == [-Errno.EACCES]


def test_hard_link_within_home_allowed(machine, vbox):
    boxed_write_file(vbox, "orig", b"x")
    results = run_calls([("link", "orig", "alias")], machine=machine, box=vbox)
    assert results == [0]
    assert boxed_read_file(vbox, "alias") == b"x"


def test_rmdir_own_reserve_directory(machine, vbox):
    results = run_calls(
        [("mkdir", "scratch"), ("rmdir", "scratch")], machine=machine, box=vbox
    )
    assert results == [0, 0]


def test_symlink_write_through_checked_at_target(machine, alice, alice_task, vbox):
    machine.write_file(alice_task, "/home/alice/hers", b"data", mode=0o644)
    results = run_calls([("symlink", "/home/alice/hers", "alias")], machine=machine, box=vbox)
    assert results == [0]
    # reading through the link works (world-readable target)...
    assert boxed_read_file(vbox, "alias") == b"data"
    # ...but writing through it is judged by the target's directory
    assert boxed_write_file(vbox, "alias", b"clobber") == -Errno.EACCES


# -- processes ------------------------------------------------------------ #


def test_spawn_denied_without_x(machine, alice, vbox):
    machine.register_program("noop", lambda proc, args: iter(()))
    machine.install_program(vbox.owner_task, f"{vbox.home}/tool.exe", "noop")
    # strip the x right from the visitor
    vbox.grant(vbox.home, "Visitor", "rwla")
    results = run_calls([("spawn", "tool.exe", ())], machine=machine, box=vbox)
    assert results == [-Errno.EACCES]


def test_unknown_syscall_in_box_is_enosys(machine, vbox):
    results = run_calls(
        [("mount", "/dev/x", "/mnt"), ("ptrace", 1)], machine=machine, box=vbox
    )
    assert results == [-Errno.ENOSYS, -Errno.ENOSYS]


def test_getpid_passthrough(machine, vbox):
    def body(proc, args):
        proc.scratch["pid"] = yield proc.sys.getpid()
        return 0

    proc = vbox.spawn(body)
    machine.run()
    assert proc.context.scratch["pid"] == proc.pid


def test_getuid_is_supervisor_uid(machine, alice, vbox):
    results = run_calls([("getuid",)], machine=machine, box=vbox)
    assert results == [alice.uid]


# -- getacl/setacl ---------------------------------------------------------- #


def test_getacl_of_file_reports_directory_acl(machine, vbox):
    boxed_write_file(vbox, "f", b"x")
    results = run_calls([("getacl", "f")], machine=machine, box=vbox)
    assert "Visitor rwlxa" in results[0]


def test_getacl_of_unacled_dir_is_empty(machine, alice, alice_task, vbox):
    machine.kcall_x(alice_task, "mkdir", "/home/alice/pub", 0o755)
    results = run_calls([("getacl", "/home/alice/pub")], machine=machine, box=vbox)
    # /home/alice/pub has no ACL and nobody-fallback denies 'l' (mode 755
    # grants read to others, so listing is allowed and the ACL is empty)
    assert results == [""]


def test_setacl_bad_rights_is_einval(machine, vbox):
    results = run_calls(
        [("setacl", ".", "Other", "zz")], machine=machine, box=vbox, cwd=vbox.home
    )
    assert results == [-Errno.EINVAL]


# -- statistics & cleanup ---------------------------------------------------- #


def test_supervisor_counts_syscalls_and_denials(machine, alice, alice_task, vbox):
    machine.write_file(alice_task, "/home/alice/secret", b"s", mode=0o600)
    boxed_read_file(vbox, "/home/alice/secret")
    assert vbox.supervisor.syscalls_handled >= 1
    assert vbox.supervisor.denials >= 1


def test_child_exit_releases_supervisor_descriptors(machine, vbox):
    def leaky(proc, args):
        yield proc.sys.open("f1", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
        yield proc.sys.open("f2", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
        return 0  # exits without closing

    vbox.spawn(leaky)
    machine.run()
    # the supervisor's own descriptor table holds only the channel fd
    assert len(vbox.supervisor.task.fdtable) == 1
    assert len(vbox.supervisor.table) == 0
