"""strace-style syscall recording."""

import pytest

from repro.core.box import IdentityBox
from repro.interpose.strace import SyscallTrace, TraceRecord
from repro.kernel import Errno, OpenFlags
from tests.helpers import boxed_read_file, boxed_write_file


@pytest.fixture
def traced_box(machine, alice):
    box = IdentityBox(machine, alice, "Traced")
    box.supervisor.strace = SyscallTrace()
    return box


def test_records_every_trapped_call(machine, traced_box):
    boxed_write_file(traced_box, "f", b"abc")
    trace = traced_box.supervisor.strace
    names = [r.name for r in trace.records]
    assert names == ["open", "write", "close"]


def test_records_original_call_not_rewrite(machine, traced_box):
    # a bulk write is rewritten into pwrite-on-channel; the trace must
    # still say "write", with the child's own arguments
    boxed_write_file(traced_box, "big", b"z" * 4096)
    trace = traced_box.supervisor.strace
    write_record = trace.calls_named("write")[0]
    assert write_record.args[2] == 4096
    assert write_record.result == 4096
    assert not trace.calls_named("pwrite")


def test_records_denials_with_errno(machine, alice_task, traced_box):
    machine.write_file(alice_task, "/home/alice/x", b"s", mode=0o600)
    boxed_read_file(traced_box, "/home/alice/x")
    failures = traced_box.supervisor.strace.failures()
    assert failures
    assert failures[0].result == -Errno.EACCES
    assert "EACCES" in failures[0].render()


def test_render_format(machine, traced_box):
    boxed_write_file(traced_box, "notes.txt", b"hi")
    text = traced_box.supervisor.strace.render()
    assert '[pid ' in text
    assert 'Traced] open("notes.txt"' in text
    assert "= 2" in text  # the write's result


def test_histogram(machine, traced_box):
    boxed_write_file(traced_box, "a", b"1")
    boxed_write_file(traced_box, "b", b"2")
    hist = traced_box.supervisor.strace.histogram()
    assert hist["open"] == 2
    assert hist["write"] == 2
    assert hist["close"] == 2


def test_for_identity_and_pid(machine, alice):
    sup_box = IdentityBox(machine, alice, "A")
    sup_box.supervisor.strace = SyscallTrace()
    b_box = IdentityBox(machine, alice, "B", supervisor=sup_box.supervisor)
    boxed_write_file(sup_box, "fa", b"1")
    boxed_write_file(b_box, "fb", b"2")
    trace = sup_box.supervisor.strace
    assert {r.identity for r in trace.records} == {"A", "B"}
    assert all(r.identity == "A" for r in trace.for_identity("A"))
    pid = trace.records[0].pid
    assert all(r.pid == pid for r in trace.for_pid(pid))


def test_limit_drops_oldest(machine, traced_box):
    traced_box.supervisor.strace.limit = 2
    boxed_write_file(traced_box, "f", b"x")  # open+write+close = 3 calls
    trace = traced_box.supervisor.strace
    assert len(trace) == 2
    assert [r.name for r in trace.records] == ["write", "close"]


def test_addresses_rendered_opaquely():
    record = TraceRecord(0, 1, "I", "read", (3, 0x10000000, 64), 64)
    assert "<addr>" in record.render()


def test_long_arguments_truncated():
    record = TraceRecord(0, 1, "I", "open", ("x" * 500,), 3)
    assert len(record.render()) < 200
    assert "..." in record.render()


def test_tracing_costs_no_simulated_time(machine, alice):
    def run(with_trace):
        m = __import__("repro.kernel", fromlist=["Machine"]).Machine()
        cred = m.add_user("u")
        box = IdentityBox(m, cred, "V")
        if with_trace:
            box.supervisor.strace = SyscallTrace()
        boxed_write_file(box, "f", b"data")
        return m.clock.now_ns

    assert run(True) == run(False)
