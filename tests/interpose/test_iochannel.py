"""The shared I/O channel."""

import pytest

from repro.interpose.iochannel import CHANNEL_FD, IOChannel
from repro.kernel.errno import KernelError


@pytest.fixture
def channel(machine, alice):
    return IOChannel(machine, machine.host_task(alice), size=1024)


def test_stage_and_read_back(channel):
    off = channel.stage(b"payload")
    assert channel.read_back(off, 7) == b"payload"


def test_alloc_bumps_offsets(channel):
    a = channel.alloc(100)
    b = channel.alloc(100)
    assert b == a + 100


def test_alloc_wraps_at_capacity(channel):
    channel.alloc(1000)
    off = channel.alloc(100)  # would exceed 1024: wraps to 0
    assert off == 0


def test_oversized_transfer_rejected(channel):
    with pytest.raises(KernelError):
        channel.alloc(4096)


def test_distinct_channels_get_distinct_files(machine, alice):
    task = machine.host_task(alice)
    c1 = IOChannel(machine, task)
    c2 = IOChannel(machine, task)
    assert c1.path != c2.path


def test_bytes_staged_accounting(channel):
    channel.stage(b"12345")
    off = channel.alloc(3)
    channel.read_back(off, 3)
    assert channel.bytes_staged == 8


def test_attach_child_installs_known_fd(machine, alice, channel):
    def body(proc, args):
        yield proc.compute(us=1)
        return 0

    proc = machine.spawn(body, cred=alice)
    channel.attach_child(proc)
    of = proc.task.fdtable.get(CHANNEL_FD)
    assert of.path == channel.path


def test_child_can_pread_staged_data(machine, alice, channel):
    off = channel.stage(b"from supervisor")
    got = []

    def body(proc, args):
        buf = proc.alloc(32)
        n = yield proc.sys.pread(CHANNEL_FD, buf, 15, off)
        got.append(proc.read_buffer(buf, n))
        return 0

    proc = machine.spawn(body, cred=alice)
    channel.attach_child(proc)
    machine.run_to_completion()
    assert got == [b"from supervisor"]


def test_child_pwrite_visible_to_supervisor(machine, alice, channel):
    off = channel.alloc(5)

    def body(proc, args):
        addr = proc.alloc_bytes(b"hello")
        yield proc.sys.pwrite(CHANNEL_FD, addr, 5, off)
        return 0

    proc = machine.spawn(body, cred=alice)
    channel.attach_child(proc)
    machine.run_to_completion()
    assert channel.read_back(off, 5) == b"hello"


def test_close_releases_fd(machine, alice):
    channel = IOChannel(machine, machine.host_task(alice))
    channel.close()  # no error; further supervisor I/O would be EBADF
