"""Fork-awareness of the interposition layer: supervisors and boxes.

A supervisor is welded to the world epoch it was built against; after a
``Machine.fork`` or ``restore`` it must refuse to adopt new children and
instead be re-hosted with :meth:`Supervisor.fork` (fresh task, channel,
process table, counters, and trace lineage).
"""

import pytest

from repro.core.box import IdentityBox
from repro.kernel import Errno, KernelError
from tests.helpers import boxed_read_file, boxed_write_file


def test_stale_supervisor_refuses_adopt(machine, alice, box):
    # quiesce, snapshot, rewind: the box's supervisor is now a past epoch
    machine.run()
    snap = machine.snapshot()
    machine.restore(snap)

    def body(proc, args):
        yield proc.sys.getpid()
        return 0

    with pytest.raises(KernelError) as exc:
        box.spawn(body)
    assert exc.value.errno is Errno.EBADF


def test_forked_box_runs_on_child_world(machine, alice, box):
    assert boxed_write_file(box, "f.txt", b"parent-data") == 11
    machine.run()
    child = machine.fork()
    cbox = box.fork(child)

    # the forked world carries the visitor's home and its file
    assert boxed_read_file(cbox, "f.txt") == b"parent-data"
    # writes in the forked box never reach the parent world
    assert boxed_write_file(cbox, "f.txt", b"child-data") == 10
    assert boxed_read_file(box, "f.txt") == b"parent-data"
    assert cbox.identity == box.identity
    assert cbox.home == box.home


def test_forked_supervisor_counters_detached(machine, alice, box):
    boxed_write_file(box, "a.txt", b"x")
    handled_before = box.supervisor.syscalls_handled
    assert handled_before > 0
    child = machine.fork()
    sup = box.supervisor.fork(child)
    assert sup.syscalls_handled == 0
    assert sup.denials == 0
    assert sup is not box.supervisor
    assert sup.machine is child
    # parent supervisor's tally is untouched by the fork
    assert box.supervisor.syscalls_handled == handled_before


def test_forked_box_spawns_fresh_trace_lineage(machine, alice):
    from repro.core.telemetry import Telemetry

    machine.telemetry = Telemetry(machine.clock)
    box = IdentityBox(machine, alice, "Visitor")
    boxed_write_file(box, "f.txt", b"data")
    parent_traces = {s.trace_id for s in machine.telemetry.spans}
    assert parent_traces

    child = machine.fork()
    cbox = box.fork(child)
    boxed_read_file(cbox, "f.txt")
    child_traces = {s.trace_id for s in child.telemetry.spans}
    assert child_traces
    assert parent_traces.isdisjoint(child_traces)
