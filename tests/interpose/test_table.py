"""Supervisor-side child and descriptor bookkeeping."""

import pytest

from repro.interpose.table import ChildState, NO_RESULT, ProcessTable, VirtualFD
from repro.kernel.errno import Errno, KernelError


def vfd(path="/f"):
    return VirtualFD(driver=None, handle=7, path=path, flags=0)


@pytest.fixture
def state():
    return ChildState(pid=100, identity="Visitor", home="/tmp/boxes/Visitor")


def test_install_starts_at_three(state):
    assert state.install(vfd()) == 3
    assert state.install(vfd()) == 4


def test_get_and_drop(state):
    fd = state.install(vfd("/a"))
    assert state.get(fd).path == "/a"
    dropped = state.drop(fd)
    assert dropped.path == "/a"
    with pytest.raises(KernelError) as info:
        state.get(fd)
    assert info.value.errno is Errno.EBADF


def test_fd_reuse_after_drop(state):
    fd = state.install(vfd())
    state.install(vfd())
    state.drop(fd)
    assert state.install(vfd()) == fd


def test_open_fds_sorted(state):
    state.install(vfd())
    state.install(vfd())
    assert state.open_fds() == [3, 4]


def test_reset_syscall_clears_scratch(state):
    state.exit_value = 42
    state.exit_action = lambda p, s: None
    state.reset_syscall()
    assert state.exit_value is NO_RESULT
    assert state.exit_action is None


def test_process_table_adopt_and_get(state):
    table = ProcessTable()
    table.adopt(state)
    assert table.get(100) is state
    assert 100 in table
    assert len(table) == 1


def test_process_table_unknown_pid(state):
    table = ProcessTable()
    with pytest.raises(KernelError) as info:
        table.get(999)
    assert info.value.errno is Errno.ESRCH


def test_forget_is_idempotent(state):
    table = ProcessTable()
    table.adopt(state)
    assert table.forget(100) is state
    assert table.forget(100) is None


def test_pids_with_identity(state):
    table = ProcessTable()
    table.adopt(state)
    table.adopt(ChildState(pid=200, identity="Other", home="/x"))
    table.adopt(ChildState(pid=150, identity="Visitor", home="/y"))
    assert table.pids_with_identity("Visitor") == [100, 150]
