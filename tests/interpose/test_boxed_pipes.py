"""Pipes inside identity boxes: native-passthrough descriptors.

Pipe reads must be able to *block*, which a host-level supervisor cannot
do on the child's behalf — so pipe ends live in the child's own kernel
table and the supervisor rewrites operations on them into native calls.
These tests cover the full §6 story under trace: creation, data flow,
blocking pipelines across spawned children, and EOF/EPIPE delivery.
"""

import pytest

from repro.core.box import IdentityBox
from repro.kernel import Errno, ProcessState


@pytest.fixture
def vbox(machine, alice):
    return IdentityBox(machine, alice, "Visitor")


def test_boxed_pipe_roundtrip(machine, vbox):
    out = []

    def body(proc, args):
        rfd, wfd = yield proc.sys.pipe()
        addr = proc.alloc_bytes(b"through the box")
        yield proc.sys.write(wfd, addr, 15)
        buf = proc.alloc(32)
        n = yield proc.sys.read(rfd, buf, 32)
        out.append(proc.read_buffer(buf, n))
        yield proc.sys.close(rfd)
        yield proc.sys.close(wfd)
        return 0

    proc = vbox.spawn(body)
    machine.run_to_completion()
    assert proc.exit_status == 0
    assert out == [b"through the box"]


def test_boxed_pipe_fds_share_namespace_with_files(machine, vbox):
    """Pipe fds and file vfds must not collide."""
    from repro.kernel import OpenFlags

    seen = {}

    def body(proc, args):
        f1 = yield proc.sys.open("a.txt", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
        rfd, wfd = yield proc.sys.pipe()
        f2 = yield proc.sys.open("b.txt", OpenFlags.O_WRONLY | OpenFlags.O_CREAT)
        seen["fds"] = (f1, rfd, wfd, f2)
        # all four must work through their own kind of machinery
        addr = proc.alloc_bytes(b"x")
        yield proc.sys.write(f1, addr, 1)
        yield proc.sys.write(wfd, addr, 1)
        yield proc.sys.write(f2, addr, 1)
        buf = proc.alloc(4)
        n = yield proc.sys.read(rfd, buf, 4)
        seen["pipe_read"] = n
        for fd in (f1, rfd, wfd, f2):
            yield proc.sys.close(fd)
        return 0

    proc = vbox.spawn(body)
    machine.run_to_completion()
    assert proc.exit_status == 0
    assert len(set(seen["fds"])) == 4
    assert seen["pipe_read"] == 1


def test_boxed_pipeline_across_spawn(machine, vbox):
    """The classic shell pipeline: parent | child, blocking both ways."""
    collected = []

    def worker(proc, args):
        # inherits the pipe fds from its boxed parent
        wfd = int(args[0])
        addr = proc.alloc(500)
        for i in range(20):
            proc.memory.write(addr, bytes([65 + (i % 26)]) * 500)
            yield proc.sys.write(wfd, addr, 500)
        yield proc.sys.close(wfd)
        return 0

    machine.register_program("worker", worker)
    machine.install_program(vbox.owner_task, f"{vbox.home}/worker.exe", "worker")

    def parent(proc, args):
        rfd, wfd = yield proc.sys.pipe()
        pid = yield proc.sys.spawn("worker.exe", (str(wfd),))
        assert pid > 0
        yield proc.sys.close(wfd)  # parent keeps only the read end
        buf = proc.alloc(8192)
        while True:
            n = yield proc.sys.read(rfd, buf, 8192)
            if n == 0:
                break
            collected.append(proc.read_buffer(buf, n))
        yield proc.sys.close(rfd)
        yield proc.sys.waitpid()
        return 0

    proc = vbox.spawn(parent)
    machine.run_to_completion()
    assert proc.exit_status == 0
    data = b"".join(collected)
    assert len(data) == 20 * 500
    assert data.startswith(b"A" * 500)


def test_boxed_blocked_reader_parks_not_spins(machine, vbox):
    """A boxed reader with no data parks in BLOCKED state."""

    def reader(proc, args):
        rfd, wfd = yield proc.sys.pipe()
        buf = proc.alloc(8)
        yield proc.sys.read(rfd, buf, 8)
        return 0

    proc = vbox.spawn(reader)
    machine.run()
    assert proc.state is ProcessState.BLOCKED


def test_boxed_epipe(machine, vbox):
    results = []

    def body(proc, args):
        rfd, wfd = yield proc.sys.pipe()
        yield proc.sys.close(rfd)
        addr = proc.alloc_bytes(b"x")
        results.append((yield proc.sys.write(wfd, addr, 1)))
        yield proc.sys.close(wfd)
        return 0

    vbox.spawn(body)
    machine.run_to_completion()
    assert results == [-Errno.EPIPE]


def test_boxed_pipe_dup(machine, vbox):
    results = []

    def body(proc, args):
        rfd, wfd = yield proc.sys.pipe()
        wfd2 = yield proc.sys.dup(wfd)
        yield proc.sys.close(wfd)
        addr = proc.alloc_bytes(b"via dup")
        yield proc.sys.write(wfd2, addr, 7)
        yield proc.sys.close(wfd2)
        buf = proc.alloc(16)
        n = yield proc.sys.read(rfd, buf, 16)
        results.append(proc.read_buffer(buf, n))
        results.append((yield proc.sys.read(rfd, buf, 16)))  # EOF now
        yield proc.sys.close(rfd)
        return 0

    vbox.spawn(body)
    machine.run_to_completion()
    assert results == [b"via dup", 0]


def test_boxed_pipe_misuse_errors(machine, vbox):
    results = []

    def body(proc, args):
        rfd, wfd = yield proc.sys.pipe()
        buf = proc.alloc(8)
        results.append((yield proc.sys.pread(rfd, buf, 1, 0)))
        results.append((yield proc.sys.lseek(rfd, 0, 0)))
        results.append((yield proc.sys.ftruncate(wfd, 0)))
        st = yield proc.sys.fstat(rfd)
        results.append(st.st_size)
        yield proc.sys.close(rfd)
        yield proc.sys.close(wfd)
        return 0

    vbox.spawn(body)
    machine.run_to_completion()
    assert results == [-Errno.ESPIPE, -Errno.ESPIPE, -Errno.EINVAL, 0]


def test_pipe_contained_within_box_exit(machine, vbox):
    """Exiting without closing pipe fds leaks nothing: the kernel reaps the
    descriptions and the supervisor forgets the child."""

    def leaky(proc, args):
        yield proc.sys.pipe()
        return 0

    vbox.spawn(leaky)
    machine.run_to_completion()
    assert len(vbox.supervisor.table) == 0
