"""Signal policies: the §3 rule and the Figure-6 hierarchical extension."""

import pytest

from repro.core.box import IdentityBox
from repro.interpose.signal_policy import (
    HierarchicalSignalPolicy,
    SameIdentityPolicy,
)
from repro.interpose.supervisor import Supervisor
from repro.kernel import Errno, Signal
from tests.helpers import run_calls


def test_same_identity_policy():
    policy = SameIdentityPolicy()
    assert policy.may_signal("Freddy", "Freddy")
    assert not policy.may_signal("Freddy", "George")


def test_hierarchical_policy_ancestry():
    policy = HierarchicalSignalPolicy()
    assert policy.may_signal("root:dthain", "root:dthain:visitor")
    assert policy.may_signal("root", "root:grid:anon5")
    assert not policy.may_signal("root:dthain:visitor", "root:dthain")
    assert not policy.may_signal("root:httpd", "root:dthain:visitor")


def test_hierarchical_policy_same_identity():
    policy = HierarchicalSignalPolicy()
    assert policy.may_signal("root:a", "root:a")


def test_hierarchical_policy_label_boundaries():
    policy = HierarchicalSignalPolicy()
    # "root:dt" is NOT an ancestor of "root:dthain" (prefix of a label)
    assert not policy.may_signal("root:dt", "root:dthain")


def test_unparseable_identities_fall_back_to_equality():
    policy = HierarchicalSignalPolicy()
    # equality always wins, parseable or not
    assert policy.may_signal("a::b", "a::b")
    # identities with empty labels don't parse; ancestry never applies
    assert not policy.may_signal("a::b", "a::b:c")


def _spin_victim(box, comm="victim"):
    def victim(proc, args):
        for _ in range(300):  # long-lived but finite, so denied kills drain
            yield proc.compute(us=5)
        return 0

    return box.spawn(victim, comm=comm)


def test_supervisor_with_hierarchical_policy(machine, alice):
    supervisor = Supervisor(machine, alice, signal_policy=HierarchicalSignalPolicy())
    parent_box = IdentityBox(machine, alice, "root:dthain", supervisor=supervisor)
    child_box = IdentityBox(
        machine, alice, "root:dthain:visitor", supervisor=supervisor
    )
    victim = _spin_victim(child_box)
    results = run_calls(
        [("kill", victim.pid, int(Signal.SIGKILL))], machine=machine, box=parent_box
    )
    assert results == [0]
    assert not victim.alive


def test_hierarchical_policy_still_blocks_upward(machine, alice):
    supervisor = Supervisor(machine, alice, signal_policy=HierarchicalSignalPolicy())
    parent_box = IdentityBox(machine, alice, "root:dthain", supervisor=supervisor)
    child_box = IdentityBox(
        machine, alice, "root:dthain:visitor", supervisor=supervisor
    )
    victim = _spin_victim(parent_box)
    results = run_calls(
        [("kill", victim.pid, int(Signal.SIGKILL))], machine=machine, box=child_box
    )
    assert results == [-Errno.EPERM]
    assert victim.exit_status == 0  # ran to completion, unharmed


def test_default_policy_unchanged(machine, alice):
    supervisor = Supervisor(machine, alice)
    a = IdentityBox(machine, alice, "root:dthain", supervisor=supervisor)
    b = IdentityBox(machine, alice, "root:dthain:visitor", supervisor=supervisor)
    victim = _spin_victim(b)
    # without the hierarchical policy, ancestry means nothing
    results = run_calls(
        [("kill", victim.pid, int(Signal.SIGKILL))], machine=machine, box=a
    )
    assert results == [-Errno.EPERM]
    assert victim.exit_status == 0
