"""The mount table and driver routing."""

import pytest

from repro.interpose.drivers import Driver, LocalDriver, Namespace
from repro.kernel.errno import Errno, KernelError


class FakeDriver(Driver):
    name = "fake"
    requires_local_acl = False


@pytest.fixture
def local(machine, alice):
    return LocalDriver(machine, machine.host_task(alice))


@pytest.fixture
def ns(local):
    return Namespace(local)


def test_unmounted_paths_go_to_root_driver(ns, local):
    driver, sub = ns.route("/home/alice/f")
    assert driver is local
    assert sub == "/home/alice/f"


def test_mount_prefix_routing(ns, local):
    fake = FakeDriver()
    ns.mount("/chirp", fake)
    driver, sub = ns.route("/chirp/server1/data")
    assert driver is fake
    assert sub == "/server1/data"
    driver, _ = ns.route("/chirpy/other")
    assert driver is local  # prefix must match on a component boundary


def test_mount_point_itself_routes(ns):
    fake = FakeDriver()
    ns.mount("/chirp", fake)
    driver, sub = ns.route("/chirp")
    assert driver is fake
    assert sub == "/"


def test_longest_prefix_wins(ns):
    outer, inner = FakeDriver(), FakeDriver()
    ns.mount("/svc", outer)
    ns.mount("/svc/special", inner)
    assert ns.route("/svc/special/x")[0] is inner
    assert ns.route("/svc/other")[0] is outer


def test_relative_mount_rejected(ns):
    with pytest.raises(KernelError) as info:
        ns.mount("chirp", FakeDriver())
    assert info.value.errno is Errno.EINVAL


def test_mounts_listing(ns):
    fake = FakeDriver()
    ns.mount("/chirp", fake)
    assert ns.mounts() == [("/chirp", fake)]


# -- LocalDriver delegates to the owner's kernel context -------------------- #


def test_local_driver_open_read_write(machine, alice, local):
    from repro.kernel.fdtable import OpenFlags

    handle = local.open("/tmp/f", int(OpenFlags.O_RDWR | OpenFlags.O_CREAT), 0o644)
    assert local.write(handle, b"abc") == 3
    local.lseek(handle, 0, 0)
    assert local.read(handle, 3) == b"abc"
    assert local.fstat(handle).st_size == 3
    local.close(handle)


def test_local_driver_metadata_ops(machine, alice, local):
    local.mkdir("/tmp/d", 0o755)
    assert local.stat("/tmp/d").is_dir
    local.symlink("/tmp/d", "/tmp/link")
    assert local.readlink("/tmp/link") == "/tmp/d"
    assert "d" in local.readdir("/tmp")
    local.unlink("/tmp/link")
    local.rmdir("/tmp/d")


def test_local_driver_errors_propagate_as_kernel_errors(local):
    with pytest.raises(KernelError) as info:
        local.stat("/no/such/path")
    assert info.value.errno is Errno.ENOENT


def test_abstract_driver_everything_enosys():
    driver = Driver()
    for method, args in [
        ("open", ("/x", 0, 0)),
        ("stat", ("/x",)),
        ("readdir", ("/x",)),
        ("mkdir", ("/x", 0o755)),
        ("fetch_executable", ("/x",)),
    ]:
        with pytest.raises(KernelError) as info:
            getattr(driver, method)(*args)
        assert info.value.errno is Errno.ENOSYS
