"""The deterministic fault-injection layer: seeded, forced, and scoped."""

import pytest

from repro.kernel.errno import Errno, KernelError
from repro.kernel.timing import Clock, CostModel, NS_PER_MS
from repro.net import Cluster, FaultPlan
from repro.net.faults import ALL_KINDS, mangle_frame
from repro.net.network import Network, Peer
from repro.net.rpc import ProtocolError, decode_message

HOST = "server.example"
CLIENT = "client.example"
PORT = 9000


class Recorder:
    """An echo service that records frames and close events."""

    def __init__(self, peer: Peer):
        self.peer = peer
        self.frames = []
        self.closes = 0

    def handle(self, payload: bytes) -> bytes:
        self.frames.append(payload)
        return b"echo:" + payload

    def on_close(self):
        self.closes += 1


def make_net(plan=None):
    network = Network(clock=Clock(), costs=CostModel())
    network.add_host(HOST)
    network.add_host(CLIENT)
    handlers = []

    def factory(peer):
        handler = Recorder(peer)
        handlers.append(handler)
        return handler

    network.listen(HOST, PORT, factory)
    if plan is not None:
        network.install_faults(plan)
    return network, handlers


# ---------------------------------------------------------------------- #
# forced single faults, one per kind
# ---------------------------------------------------------------------- #


def test_forced_refuse_connect():
    net, _ = make_net(FaultPlan())
    net.faults.force("refuse")
    with pytest.raises(KernelError) as info:
        net.connect(CLIENT, HOST, PORT)
    assert info.value.errno is Errno.ECONNREFUSED
    # the forced fault is one-shot: the next connect goes through
    assert net.connect(CLIENT, HOST, PORT).call(b"hi") == b"echo:hi"


def test_forced_drop_kills_connection_before_server_sees_request():
    net, handlers = make_net(FaultPlan())
    conn = net.connect(CLIENT, HOST, PORT)
    net.faults.force("drop")
    with pytest.raises(KernelError) as info:
        conn.call(b"hi")
    assert info.value.errno is Errno.ECONNRESET
    assert handlers[0].frames == []  # the server never saw it
    assert handlers[0].closes == 1  # identity state was released
    assert conn.closed and conn.broken
    with pytest.raises(KernelError) as info:
        conn.call(b"again")
    assert info.value.errno is Errno.ECONNRESET


def test_forced_drop_after_loses_response_but_server_processed():
    net, handlers = make_net(FaultPlan())
    conn = net.connect(CLIENT, HOST, PORT)
    net.faults.force("drop_after")
    with pytest.raises(KernelError) as info:
        conn.call(b"hi")
    assert info.value.errno is Errno.ECONNRESET
    assert handlers[0].frames == [b"hi"]  # the work WAS done server-side
    assert conn.closed and conn.broken


def test_forced_spike_charges_extra_latency():
    spike = 7 * NS_PER_MS
    net, _ = make_net(FaultPlan(spike_ns=spike))
    conn = net.connect(CLIENT, HOST, PORT)
    conn.call(b"warm")
    baseline = net.clock.now_ns
    conn.call(b"x" * 4)
    plain = net.clock.now_ns - baseline
    net.faults.force("spike")
    baseline = net.clock.now_ns
    conn.call(b"x" * 4)
    assert net.clock.now_ns - baseline == plain + spike


def test_forced_truncate_cuts_the_response_short():
    net, _ = make_net(FaultPlan())
    conn = net.connect(CLIENT, HOST, PORT)
    whole = conn.call(b"payload")
    net.faults.force("truncate")
    cut = conn.call(b"payload")
    assert cut == whole[: len(whole) // 2]


def test_forced_corrupt_mangles_the_request_frame():
    net, handlers = make_net(FaultPlan())
    conn = net.connect(CLIENT, HOST, PORT)
    net.faults.force("corrupt")
    conn.call(b"payload")
    assert handlers[0].frames == [mangle_frame(b"payload")]


def test_mangled_frames_defeat_the_codec():
    from repro.net.rpc import encode_message

    frame = encode_message({"op": "stat", "path": "/"})
    with pytest.raises(ProtocolError):
        decode_message(mangle_frame(frame))


def test_restart_at_ops_breaks_every_live_connection():
    net, handlers = make_net(FaultPlan(restart_at_ops=(3,)))
    a = net.connect(CLIENT, HOST, PORT)
    b = net.connect(CLIENT, HOST, PORT)
    assert a.call(b"1") == b"echo:1"
    assert b.call(b"2") == b"echo:2"
    with pytest.raises(KernelError) as info:
        a.call(b"3")  # the scheduled crash point
    assert info.value.errno is Errno.ECONNRESET
    assert a.closed and b.closed  # the whole server went down
    assert handlers[0].closes == 1 and handlers[1].closes == 1
    # ...but it restarted: the service is still listening
    c = net.connect(CLIENT, HOST, PORT)
    assert c.call(b"4") == b"echo:4"


# ---------------------------------------------------------------------- #
# scoping, determinism, bookkeeping
# ---------------------------------------------------------------------- #


def test_ports_filter_shields_other_services():
    plan = FaultPlan(refuse_rate=1.0, drop_rate=1.0, ports=(4242,))
    net, _ = make_net(plan)
    conn = net.connect(CLIENT, HOST, PORT)  # would refuse if in scope
    assert conn.call(b"hi") == b"echo:hi"
    assert plan.stats.total() == 0


def test_force_rejects_unknown_kind():
    with pytest.raises(ValueError):
        FaultPlan().force("gremlins")
    assert set(ALL_KINDS) >= {"refuse", "drop", "drop_after", "restart"}


def _stress(seed):
    """A fixed workload under a 30% uniform plan; returns injected counts."""
    net, _ = make_net(FaultPlan.uniform(seed=seed, rate=0.3))
    conn = None
    for i in range(40):
        try:
            if conn is None or conn.closed:
                conn = net.connect(CLIENT, HOST, PORT)
            conn.call(b"frame %d" % i)
        except KernelError:
            pass
    return dict(net.faults.stats.injected)


def test_same_seed_same_fault_sequence():
    first = _stress(seed=7)
    again = _stress(seed=7)
    assert first == again
    assert sum(first.values()) > 0


def test_different_seed_different_fault_sequence():
    assert _stress(seed=7) != _stress(seed=8)


def test_zero_rate_plan_costs_nothing_on_the_clock():
    net_plain, _ = make_net()
    net_gated, _ = make_net(FaultPlan())  # installed but all rates zero

    def drive(net):
        conn = net.connect(CLIENT, HOST, PORT)
        for i in range(10):
            conn.call(b"x" * 100)
        return net.clock.now_ns

    assert drive(net_plain) == drive(net_gated)


def test_on_close_fires_exactly_once_even_when_close_races_break():
    net, handlers = make_net()
    conn = net.connect(CLIENT, HOST, PORT)
    conn.close()
    net.break_connections(HOST)  # already unregistered: no-op
    conn._break()  # belt-and-braces: still exactly once
    assert handlers[0].closes == 1


def test_cluster_crash_server_breaks_connections_and_unbinds_port():
    cluster = Cluster()
    cluster.add_machine(HOST)
    cluster.add_machine(CLIENT)
    holder = []

    def factory(peer):
        handler = Recorder(peer)
        holder.append(handler)
        return handler

    cluster.network.listen(HOST, PORT, factory)
    conn = cluster.network.connect(CLIENT, HOST, PORT)
    assert cluster.crash_server(HOST, PORT) == 1
    assert conn.closed and conn.broken and holder[0].closes == 1
    with pytest.raises(KernelError) as info:
        cluster.network.connect(CLIENT, HOST, PORT)
    assert info.value.errno is Errno.ECONNREFUSED
    # a restart is just listening again
    cluster.network.listen(HOST, PORT, factory)
    assert cluster.network.connect(CLIENT, HOST, PORT).call(b"up") == b"echo:up"


def test_cluster_crash_server_without_port_only_breaks_connections():
    cluster = Cluster()
    cluster.add_machine(HOST)
    cluster.add_machine(CLIENT)
    cluster.network.listen(HOST, PORT, Recorder)
    conn = cluster.network.connect(CLIENT, HOST, PORT)
    assert cluster.crash_server(HOST) == 1
    assert conn.closed
    # the listener survived: clients can come right back
    assert cluster.network.connect(CLIENT, HOST, PORT).call(b"hi") == b"echo:hi"


def test_bind_telemetry_mirrors_every_injection_to_counters():
    """Satellite telemetry: fault.<kind> counters track FaultStats exactly."""
    from repro.core.telemetry import Telemetry

    telemetry = Telemetry(None)
    net, _ = make_net(FaultPlan().bind_telemetry(telemetry))
    telemetry.clock = net.clock
    conn = net.connect(CLIENT, HOST, PORT)
    net.faults.force("spike", "truncate", "spike")
    conn.call(b"a")  # spike
    conn.call(b"b")  # truncate
    conn.call(b"c")  # spike again

    def count(kind):
        return telemetry.counters.get((f"fault.{kind}", ()), 0)

    assert count("spike") == net.faults.stats.injected["spike"] == 2
    assert count("truncate") == net.faults.stats.injected["truncate"] == 1
    assert count("drop") == 0


def test_unbound_plan_still_counts_stats_without_telemetry():
    net, _ = make_net(FaultPlan())
    conn = net.connect(CLIENT, HOST, PORT)
    net.faults.force("spike")
    conn.call(b"a")
    assert net.faults.stats.injected["spike"] == 1  # no crash, no sink
