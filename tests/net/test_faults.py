"""The deterministic fault-injection layer: seeded, forced, and scoped."""

import pytest

from repro.kernel.errno import Errno, KernelError
from repro.kernel.timing import Clock, CostModel, NS_PER_MS
from repro.net import Cluster, FaultPlan
from repro.net.faults import ALL_KINDS, mangle_frame
from repro.net.network import Network, Peer
from repro.net.rpc import ProtocolError, decode_message

HOST = "server.example"
CLIENT = "client.example"
PORT = 9000


class Recorder:
    """An echo service that records frames and close events."""

    def __init__(self, peer: Peer):
        self.peer = peer
        self.frames = []
        self.closes = 0

    def handle(self, payload: bytes) -> bytes:
        self.frames.append(payload)
        return b"echo:" + payload

    def on_close(self):
        self.closes += 1


def make_net(plan=None):
    network = Network(clock=Clock(), costs=CostModel())
    network.add_host(HOST)
    network.add_host(CLIENT)
    handlers = []

    def factory(peer):
        handler = Recorder(peer)
        handlers.append(handler)
        return handler

    network.listen(HOST, PORT, factory)
    if plan is not None:
        network.install_faults(plan)
    return network, handlers


# ---------------------------------------------------------------------- #
# forced single faults, one per kind
# ---------------------------------------------------------------------- #


def test_forced_refuse_connect():
    net, _ = make_net(FaultPlan())
    net.faults.force("refuse")
    with pytest.raises(KernelError) as info:
        net.connect(CLIENT, HOST, PORT)
    assert info.value.errno is Errno.ECONNREFUSED
    # the forced fault is one-shot: the next connect goes through
    assert net.connect(CLIENT, HOST, PORT).call(b"hi") == b"echo:hi"


def test_forced_drop_kills_connection_before_server_sees_request():
    net, handlers = make_net(FaultPlan())
    conn = net.connect(CLIENT, HOST, PORT)
    net.faults.force("drop")
    with pytest.raises(KernelError) as info:
        conn.call(b"hi")
    assert info.value.errno is Errno.ECONNRESET
    assert handlers[0].frames == []  # the server never saw it
    assert handlers[0].closes == 1  # identity state was released
    assert conn.closed and conn.broken
    with pytest.raises(KernelError) as info:
        conn.call(b"again")
    assert info.value.errno is Errno.ECONNRESET


def test_forced_drop_after_loses_response_but_server_processed():
    net, handlers = make_net(FaultPlan())
    conn = net.connect(CLIENT, HOST, PORT)
    net.faults.force("drop_after")
    with pytest.raises(KernelError) as info:
        conn.call(b"hi")
    assert info.value.errno is Errno.ECONNRESET
    assert handlers[0].frames == [b"hi"]  # the work WAS done server-side
    assert conn.closed and conn.broken


def test_forced_spike_charges_extra_latency():
    spike = 7 * NS_PER_MS
    net, _ = make_net(FaultPlan(spike_ns=spike))
    conn = net.connect(CLIENT, HOST, PORT)
    conn.call(b"warm")
    baseline = net.clock.now_ns
    conn.call(b"x" * 4)
    plain = net.clock.now_ns - baseline
    net.faults.force("spike")
    baseline = net.clock.now_ns
    conn.call(b"x" * 4)
    assert net.clock.now_ns - baseline == plain + spike


def test_forced_truncate_cuts_the_response_short():
    net, _ = make_net(FaultPlan())
    conn = net.connect(CLIENT, HOST, PORT)
    whole = conn.call(b"payload")
    net.faults.force("truncate")
    cut = conn.call(b"payload")
    assert cut == whole[: len(whole) // 2]


def test_forced_corrupt_mangles_the_request_frame():
    net, handlers = make_net(FaultPlan())
    conn = net.connect(CLIENT, HOST, PORT)
    net.faults.force("corrupt")
    conn.call(b"payload")
    assert handlers[0].frames == [mangle_frame(b"payload")]


def test_mangled_frames_defeat_the_codec():
    from repro.net.rpc import encode_message

    frame = encode_message({"op": "stat", "path": "/"})
    with pytest.raises(ProtocolError):
        decode_message(mangle_frame(frame))


def test_restart_at_ops_breaks_every_live_connection():
    net, handlers = make_net(FaultPlan(restart_at_ops=(3,)))
    a = net.connect(CLIENT, HOST, PORT)
    b = net.connect(CLIENT, HOST, PORT)
    assert a.call(b"1") == b"echo:1"
    assert b.call(b"2") == b"echo:2"
    with pytest.raises(KernelError) as info:
        a.call(b"3")  # the scheduled crash point
    assert info.value.errno is Errno.ECONNRESET
    assert a.closed and b.closed  # the whole server went down
    assert handlers[0].closes == 1 and handlers[1].closes == 1
    # ...but it restarted: the service is still listening
    c = net.connect(CLIENT, HOST, PORT)
    assert c.call(b"4") == b"echo:4"


# ---------------------------------------------------------------------- #
# scoping, determinism, bookkeeping
# ---------------------------------------------------------------------- #


def test_ports_filter_shields_other_services():
    plan = FaultPlan(refuse_rate=1.0, drop_rate=1.0, ports=(4242,))
    net, _ = make_net(plan)
    conn = net.connect(CLIENT, HOST, PORT)  # would refuse if in scope
    assert conn.call(b"hi") == b"echo:hi"
    assert plan.stats.total() == 0


def test_force_rejects_unknown_kind():
    with pytest.raises(ValueError):
        FaultPlan().force("gremlins")
    assert set(ALL_KINDS) >= {"refuse", "drop", "drop_after", "restart"}


def _stress(seed):
    """A fixed workload under a 30% uniform plan; returns injected counts."""
    net, _ = make_net(FaultPlan.uniform(seed=seed, rate=0.3))
    conn = None
    for i in range(40):
        try:
            if conn is None or conn.closed:
                conn = net.connect(CLIENT, HOST, PORT)
            conn.call(b"frame %d" % i)
        except KernelError:
            pass
    return dict(net.faults.stats.injected)


def test_same_seed_same_fault_sequence():
    first = _stress(seed=7)
    again = _stress(seed=7)
    assert first == again
    assert sum(first.values()) > 0


def test_different_seed_different_fault_sequence():
    assert _stress(seed=7) != _stress(seed=8)


def test_zero_rate_plan_costs_nothing_on_the_clock():
    net_plain, _ = make_net()
    net_gated, _ = make_net(FaultPlan())  # installed but all rates zero

    def drive(net):
        conn = net.connect(CLIENT, HOST, PORT)
        for i in range(10):
            conn.call(b"x" * 100)
        return net.clock.now_ns

    assert drive(net_plain) == drive(net_gated)


def test_on_close_fires_exactly_once_even_when_close_races_break():
    net, handlers = make_net()
    conn = net.connect(CLIENT, HOST, PORT)
    conn.close()
    net.break_connections(HOST)  # already unregistered: no-op
    conn._break()  # belt-and-braces: still exactly once
    assert handlers[0].closes == 1


def test_cluster_crash_server_breaks_connections_and_unbinds_port():
    cluster = Cluster()
    cluster.add_machine(HOST)
    cluster.add_machine(CLIENT)
    holder = []

    def factory(peer):
        handler = Recorder(peer)
        holder.append(handler)
        return handler

    cluster.network.listen(HOST, PORT, factory)
    conn = cluster.network.connect(CLIENT, HOST, PORT)
    assert cluster.crash_server(HOST, PORT) == 1
    assert conn.closed and conn.broken and holder[0].closes == 1
    with pytest.raises(KernelError) as info:
        cluster.network.connect(CLIENT, HOST, PORT)
    assert info.value.errno is Errno.ECONNREFUSED
    # a restart is just listening again
    cluster.network.listen(HOST, PORT, factory)
    assert cluster.network.connect(CLIENT, HOST, PORT).call(b"up") == b"echo:up"


def test_cluster_crash_server_without_port_only_breaks_connections():
    cluster = Cluster()
    cluster.add_machine(HOST)
    cluster.add_machine(CLIENT)
    cluster.network.listen(HOST, PORT, Recorder)
    conn = cluster.network.connect(CLIENT, HOST, PORT)
    assert cluster.crash_server(HOST) == 1
    assert conn.closed
    # the listener survived: clients can come right back
    assert cluster.network.connect(CLIENT, HOST, PORT).call(b"hi") == b"echo:hi"


def test_bind_telemetry_mirrors_every_injection_to_counters():
    """Satellite telemetry: fault.<kind> counters track FaultStats exactly."""
    from repro.core.telemetry import Telemetry

    telemetry = Telemetry(None)
    net, _ = make_net(FaultPlan().bind_telemetry(telemetry))
    telemetry.clock = net.clock
    conn = net.connect(CLIENT, HOST, PORT)
    net.faults.force("spike", "truncate", "spike")
    conn.call(b"a")  # spike
    conn.call(b"b")  # truncate
    conn.call(b"c")  # spike again

    def count(kind):
        return telemetry.counters.get((f"fault.{kind}", ()), 0)

    assert count("spike") == net.faults.stats.injected["spike"] == 2
    assert count("truncate") == net.faults.stats.injected["truncate"] == 1
    assert count("drop") == 0


def test_unbound_plan_still_counts_stats_without_telemetry():
    net, _ = make_net(FaultPlan())
    conn = net.connect(CLIENT, HOST, PORT)
    net.faults.force("spike")
    conn.call(b"a")
    assert net.faults.stats.injected["spike"] == 1  # no crash, no sink


# ---------------------------------------------------------------------- #
# blackouts: scheduled whole-endpoint outages with duration
# ---------------------------------------------------------------------- #

HOST2 = "peer.example"


def make_two_host_net(plan):
    net, handlers = make_net(plan)
    net.add_host(HOST2)
    net.listen(HOST2, PORT, lambda peer: Recorder(peer))
    return net, handlers


def test_blackout_window_darkens_one_host_and_lifts_on_its_own():
    from repro.net import Blackout

    plan = FaultPlan(ports=(PORT,), blackouts=(Blackout(PORT, 2, 5, host=HOST),))
    net, _ = make_two_host_net(plan)
    conn = net.connect(CLIENT, HOST, PORT)
    other = net.connect(CLIENT, HOST2, PORT)
    assert conn.call(b"1") == b"echo:1"  # op 1: before the window
    with pytest.raises(KernelError) as info:
        conn.call(b"2")  # op 2: the window opens, the connection breaks
    assert info.value.errno is Errno.ECONNRESET
    assert conn.closed and conn.broken
    # while dark, even a fresh connect is refused
    with pytest.raises(KernelError) as refused:
        net.connect(CLIENT, HOST, PORT)
    assert refused.value.errno is Errno.ECONNREFUSED
    # the scoped peer on the same port stays up, and its traffic advances
    # the op counter that eventually closes the window
    for payload in (b"3", b"4", b"5"):
        assert other.call(payload) == b"echo:" + payload
    # op counter is now past end_op: the endpoint is back by itself
    back = net.connect(CLIENT, HOST, PORT)
    assert back.call(b"6") == b"echo:6"
    assert plan.stats.injected["blackout"] >= 2  # the break + the refusal


def test_blackout_without_host_darkens_every_endpoint_on_the_port():
    from repro.net import Blackout

    plan = FaultPlan(ports=(PORT,), blackouts=(Blackout(PORT, 1, 3),))
    net, _ = make_two_host_net(plan)
    a = net.connect(CLIENT, HOST, PORT)
    b = net.connect(CLIENT, HOST2, PORT)
    with pytest.raises(KernelError):
        a.call(b"1")
    with pytest.raises(KernelError):
        b.call(b"2")  # port-wide: the other host is just as dark


def test_forced_blackout_denies_exactly_once():
    net, _ = make_net(FaultPlan())
    conn = net.connect(CLIENT, HOST, PORT)
    net.faults.force("blackout")
    with pytest.raises(KernelError) as info:
        conn.call(b"a")
    assert info.value.errno is Errno.ECONNRESET
    again = net.connect(CLIENT, HOST, PORT)
    assert again.call(b"b") == b"echo:b"  # one-shot, no window


def test_blackout_active_is_a_pure_query():
    from repro.net import Blackout

    plan = FaultPlan(ports=(PORT,), blackouts=(Blackout(PORT, 0, 10, host=HOST),))
    net, _ = make_net(plan)
    assert plan.blackout_active(HOST, PORT) is True
    assert plan.blackout_active(HOST2, PORT) is False
    assert plan.stats.total() == 0  # asking injected nothing


def test_blackout_injections_mirror_into_fault_counters():
    from repro.core.telemetry import Telemetry
    from repro.net import Blackout

    telemetry = Telemetry(None)
    plan = FaultPlan(
        ports=(PORT,), blackouts=(Blackout(PORT, 1, 2, host=HOST),)
    ).bind_telemetry(telemetry)
    net, _ = make_net(plan)
    telemetry.clock = net.clock
    conn = net.connect(CLIENT, HOST, PORT)
    with pytest.raises(KernelError):
        conn.call(b"a")
    assert telemetry.counters.get(("fault.blackout", ()), 0) == 1
    assert plan.stats.injected["blackout"] == 1


def test_schedule_blackout_installs_a_silent_plan_when_none_is_active():
    cluster = Cluster()
    cluster.add_machine(HOST)
    assert cluster.network.faults is None
    blackout = cluster.schedule_blackout(PORT, 5, 9, host=HOST)
    plan = cluster.network.faults
    assert plan is not None and plan.blackouts == (blackout,)
    assert plan.applies_to(PORT)
    assert plan.stats.total() == 0  # silent except for the window


def test_schedule_blackout_extends_an_installed_plan_and_its_ports():
    cluster = Cluster()
    cluster.add_machine(HOST)
    plan = FaultPlan(seed=7, ports=(4242,))
    cluster.install_faults(plan)
    blackout = cluster.schedule_blackout(PORT, 5, 9)
    assert cluster.network.faults is plan  # extended, not replaced
    assert blackout in plan.blackouts
    assert plan.applies_to(PORT) and plan.applies_to(4242)
