"""Message framing: JSON envelope with tagged bytes."""

import pytest

from repro.net.rpc import ProtocolError, decode_message, encode_message


def test_scalar_roundtrip():
    msg = {"op": "stat", "n": 3, "f": 1.5, "b": True, "none": None}
    assert decode_message(encode_message(msg)) == msg


def test_bytes_roundtrip():
    msg = {"data": b"\x00\x01\xff binary", "name": "x"}
    assert decode_message(encode_message(msg)) == msg


def test_nested_structures():
    msg = {"list": [1, "a", b"b", {"inner": b"\x80"}], "d": {"k": [b"x"]}}
    assert decode_message(encode_message(msg)) == msg


def test_empty_bytes():
    assert decode_message(encode_message({"d": b""})) == {"d": b""}


def test_tuples_become_lists():
    decoded = decode_message(encode_message({"t": (1, 2)}))
    assert decoded["t"] == [1, 2]


def test_unencodable_type_raises():
    with pytest.raises(ProtocolError):
        encode_message({"bad": object()})


def test_bad_frame_raises():
    with pytest.raises(ProtocolError):
        decode_message(b"not json at all {{{")


def test_non_dict_frame_raises():
    import json

    with pytest.raises(ProtocolError):
        decode_message(json.dumps([1, 2]).encode())


def test_encoding_is_deterministic():
    msg = {"b": 1, "a": 2}
    assert encode_message(msg) == encode_message({"a": 2, "b": 1})


def test_frame_size_reflects_payload():
    small = len(encode_message({"data": b"x"}))
    big = len(encode_message({"data": b"x" * 30000}))
    assert big > small + 30000  # base64 expansion included


# -- tag-collision escaping --------------------------------------------------- #


def test_user_dict_shaped_like_bytes_tag_roundtrips():
    # a user payload that *looks* like the wire encoding of bytes must not
    # be decoded as bytes — "not-base64!" isn't even valid base64
    msg = {"payload": {"__b64__": "not-base64!"}}
    assert decode_message(encode_message(msg)) == msg


def test_user_dict_shaped_like_bytes_tag_with_valid_base64_roundtrips():
    msg = {"payload": {"__b64__": "aGVsbG8="}}  # would decode to b"hello"
    assert decode_message(encode_message(msg)) == msg


def test_user_dict_shaped_like_escape_tag_roundtrips():
    msg = {"payload": {"__esc__": {"anything": 1}}}
    assert decode_message(encode_message(msg)) == msg


def test_escape_wrapping_nests():
    msg = {"payload": {"__esc__": {"__b64__": "still-mine"}}}
    assert decode_message(encode_message(msg)) == msg


def test_escaped_dict_values_still_decode():
    # values inside an escaped collision dict keep full wire semantics
    msg = {"__b64__": [b"real bytes", {"deep": b"more"}]}
    frame = encode_message({"payload": msg})
    assert decode_message(frame) == {"payload": msg}


def test_bytes_still_roundtrip_alongside_collisions():
    msg = {"data": b"\x00\xff", "shadow": {"__b64__": "decoy"}}
    assert decode_message(encode_message(msg)) == msg


def test_hostile_escape_tag_with_non_dict_value_is_preserved():
    import json

    # a frame forged by a peer, not produced by encode_message: the escape
    # tag wrapping a non-dict must not crash the decoder
    frame = json.dumps({"x": {"__esc__": 5}}).encode()
    assert decode_message(frame) == {"x": {"__esc__": 5}}
