"""Clusters: shared clocks across machines plus the network."""

import pytest

from repro.net.cluster import Cluster


def test_machines_share_the_clock():
    cluster = Cluster()
    m1 = cluster.add_machine("h1")
    m2 = cluster.add_machine("h2")
    assert m1.clock is m2.clock is cluster.clock
    t1 = m1.host_task(m1.users.credentials_for("root"))
    m1.kcall(t1, "getuid")
    assert m2.clock.now_ns == m1.clock.now_ns > 0


def test_machines_registered_on_network():
    cluster = Cluster()
    cluster.add_machine("h1")
    cluster.network.listen("h1", 1234, lambda peer: None)
    assert ("h1", 1234) in cluster.network.services()


def test_duplicate_hostname_rejected():
    cluster = Cluster()
    cluster.add_machine("h1")
    with pytest.raises(ValueError):
        cluster.add_machine("h1")


def test_shared_cost_model():
    cluster = Cluster()
    m1 = cluster.add_machine("h1")
    assert m1.costs is cluster.costs


def test_machine_lookup():
    cluster = Cluster()
    m1 = cluster.add_machine("h1")
    assert cluster.machine("h1") is m1


def test_run_all_drains_every_machine():
    cluster = Cluster()
    m1 = cluster.add_machine("h1")
    m2 = cluster.add_machine("h2")
    done = []
    for machine, tag in ((m1, "a"), (m2, "b")):
        cred = machine.add_user("u")

        def body(proc, args, tag=tag):
            yield proc.compute(us=1)
            done.append(tag)
            return 0

        machine.spawn(body, cred=cred)
    cluster.run_all()
    assert sorted(done) == ["a", "b"]
