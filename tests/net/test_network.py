"""The simulated network: hosts, services, connections, charges."""

import pytest

from repro.kernel.errno import Errno, KernelError
from repro.kernel.timing import Clock, CostModel
from repro.net.network import Network, Peer


class Echo:
    def __init__(self, peer: Peer):
        self.peer = peer
        self.closed = False

    def handle(self, payload: bytes) -> bytes:
        return b"echo:" + payload

    def on_close(self):
        self.closed = True


@pytest.fixture
def net():
    network = Network(clock=Clock(), costs=CostModel())
    network.add_host("server.example")
    network.add_host("client.example")
    return network


def test_connect_and_call(net):
    net.listen("server.example", 9000, Echo)
    conn = net.connect("client.example", "server.example", 9000)
    assert conn.call(b"hi") == b"echo:hi"


def test_server_sees_peer_hostname(net):
    handlers = []

    def factory(peer):
        handler = Echo(peer)
        handlers.append(handler)
        return handler

    net.listen("server.example", 9000, factory)
    net.connect("client.example", "server.example", 9000)
    assert handlers[0].peer.hostname == "client.example"


def test_connect_refused_without_listener(net):
    with pytest.raises(KernelError) as info:
        net.connect("client.example", "server.example", 9000)
    assert info.value.errno is Errno.ECONNREFUSED


def test_unknown_hosts_rejected(net):
    net.listen("server.example", 9000, Echo)
    with pytest.raises(KernelError):
        net.connect("ghost.example", "server.example", 9000)
    with pytest.raises(KernelError):
        net.listen("ghost.example", 9001, Echo)


def test_port_conflict(net):
    net.listen("server.example", 9000, Echo)
    with pytest.raises(KernelError) as info:
        net.listen("server.example", 9000, Echo)
    assert info.value.errno is Errno.EBUSY


def test_unlisten_frees_port(net):
    net.listen("server.example", 9000, Echo)
    net.unlisten("server.example", 9000)
    net.listen("server.example", 9000, Echo)


def test_calls_charge_rtt_and_transfer(net):
    net.listen("server.example", 9000, Echo)
    conn = net.connect("client.example", "server.example", 9000)
    t0 = net.clock.now_ns
    conn.call(b"x" * 1200)
    elapsed = net.clock.now_ns - t0
    expected_min = net.costs.net_rtt_ns + net.costs.net_transfer_cost(1200)
    assert elapsed >= expected_min


def test_bigger_payloads_cost_more(net):
    net.listen("server.example", 9000, Echo)
    conn = net.connect("client.example", "server.example", 9000)
    t0 = net.clock.now_ns
    conn.call(b"x")
    small = net.clock.now_ns - t0
    t0 = net.clock.now_ns
    conn.call(b"x" * 100_000)
    big = net.clock.now_ns - t0
    assert big > small


def test_traffic_accounting(net):
    net.listen("server.example", 9000, Echo)
    conn = net.connect("client.example", "server.example", 9000)
    conn.call(b"12345")
    assert conn.bytes_sent == 5
    assert conn.bytes_received == len(b"echo:12345")


def test_call_after_close_is_epipe(net):
    net.listen("server.example", 9000, Echo)
    conn = net.connect("client.example", "server.example", 9000)
    conn.close()
    with pytest.raises(KernelError) as info:
        conn.call(b"late")
    assert info.value.errno is Errno.EPIPE


def test_close_invokes_handler_hook(net):
    handlers = []

    def factory(peer):
        handler = Echo(peer)
        handlers.append(handler)
        return handler

    net.listen("server.example", 9000, factory)
    conn = net.connect("client.example", "server.example", 9000)
    conn.close()
    conn.close()  # idempotent
    assert handlers[0].closed


def test_per_connection_state_isolated(net):
    counters = []

    class Counter:
        def __init__(self, peer):
            self.n = 0
            counters.append(self)

        def handle(self, payload):
            self.n += 1
            return str(self.n).encode()

    net.listen("server.example", 9000, Counter)
    c1 = net.connect("client.example", "server.example", 9000)
    c2 = net.connect("client.example", "server.example", 9000)
    assert c1.call(b"") == b"1"
    assert c1.call(b"") == b"2"
    assert c2.call(b"") == b"1"
