"""Every example script must run clean end to end.

Examples are the quickstart surface of the library; a bitrotted example is
a bug.  Each is executed in-process via runpy with stdout captured.
"""

import os
import runpy

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

EXAMPLES = [
    ("quickstart.py", ["% whoami", "Freddy", "Permission denied"]),
    ("chirp_remote_exec.py", ["authenticated as globus:", "exec", "status 0"]),
    ("collaboration_sharing.py", ["heidi reads run1.csv", "mallory"]),
    ("untrusted_program.py", ["DENY", "untouched"]),
    ("mapping_survey.py", ["IdentityBox", "per user", "per group"]),
    ("hierarchical_identity.py", ["root:dthain", "may not create"]),
    (
        "multisite_pipeline.py",
        ["moved 52000 bytes", "never grew", "4 shard(s)", "per-shard ops"],
    ),
    ("boxed_pipeline.py", ["archived", "PipelineUser"]),
]


@pytest.mark.parametrize("script,expected", EXAMPLES, ids=[e[0] for e in EXAMPLES])
def test_example_runs(script, expected, capsys):
    path = os.path.join(EXAMPLES_DIR, script)
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    for marker in expected:
        assert marker in out, f"{script}: missing {marker!r} in output"


def test_example_roster_is_complete():
    """Every script in examples/ is exercised above."""
    on_disk = {
        name
        for name in os.listdir(EXAMPLES_DIR)
        if name.endswith(".py") and not name.startswith("_")
    }
    assert on_disk == {script for script, _ in EXAMPLES}
